// FlatMap64 (ISSUE 4 satellite): erase-heavy churn — tombstone reuse in
// operator[], probe-sequence termination after rehash, and the basic
// insert/find/erase contract the simulator's hot-path indexes rely on.
#include "sim/flat_map64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace coincidence::sim {
namespace {

TEST(FlatMap64, EmptyMapAnswersWithoutSlots) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_FALSE(m.erase(7));
}

TEST(FlatMap64, InsertFindEraseRoundTrip) {
  FlatMap64<std::string> m;
  m[1] = "one";
  m.insert_or_assign(2, "two");
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), "one");
  EXPECT_EQ(*m.find(2), "two");
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_FALSE(m.erase(1));  // already gone
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64, EraseReleasesValueAndTombstoneIsReusable) {
  FlatMap64<std::vector<int>> m;
  m[5] = std::vector<int>(1000, 7);
  ASSERT_TRUE(m.erase(5));
  // Reinsert the same key: operator[] must land on the tombstone (or a
  // fresh slot) and hand back a default-constructed value, not the stale
  // one.
  EXPECT_TRUE(m[5].empty());
  EXPECT_EQ(m.size(), 1u);
}

// The PendingPool id->index map does exactly this: monotonically
// increasing u64 keys, with every key erased shortly after insertion.
// Tombstones must be reclaimed (not accumulate until probes degrade or
// rehash thrashes) and lookups must stay exact throughout.
TEST(FlatMap64, EraseHeavyChurnStaysConsistent) {
  FlatMap64<std::uint64_t> m;
  const std::uint64_t kTotal = 20000;
  const std::uint64_t kWindow = 64;  // live keys at any moment
  for (std::uint64_t k = 0; k < kTotal; ++k) {
    m[k] = k * 3;
    if (k >= kWindow) ASSERT_TRUE(m.erase(k - kWindow)) << "key " << k;
    // Spot-check the live window edges every so often.
    if (k % 997 == 0 && k >= kWindow) {
      EXPECT_EQ(m.find(k - kWindow), nullptr);
      ASSERT_NE(m.find(k), nullptr);
      EXPECT_EQ(*m.find(k), k * 3);
      ASSERT_NE(m.find(k - kWindow + 1), nullptr);
      EXPECT_EQ(*m.find(k - kWindow + 1), (k - kWindow + 1) * 3);
    }
  }
  EXPECT_EQ(m.size(), kWindow);
  std::uint64_t seen = 0, sum = 0;
  m.for_each([&](std::uint64_t key, std::uint64_t value) {
    ++seen;
    EXPECT_EQ(value, key * 3);
    sum += key;
  });
  EXPECT_EQ(seen, kWindow);
  // The survivors are exactly the last kWindow keys.
  std::uint64_t expect_sum = 0;
  for (std::uint64_t k = kTotal - kWindow; k < kTotal; ++k) expect_sum += k;
  EXPECT_EQ(sum, expect_sum);
}

// Adversarial-ish keys (same low bits) force long probe chains; erasing
// the middle of a chain must not hide keys past the tombstone.
TEST(FlatMap64, TombstoneInProbeChainDoesNotHideKeys) {
  FlatMap64<int> m;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 32; ++i) keys.push_back(i << 32);
  for (std::uint64_t k : keys) m[k] = static_cast<int>(k >> 32);
  for (std::size_t i = 0; i < keys.size(); i += 2) ASSERT_TRUE(m.erase(keys[i]));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.find(keys[i]), nullptr);
    } else {
      ASSERT_NE(m.find(keys[i]), nullptr) << "key index " << i;
      EXPECT_EQ(*m.find(keys[i]), static_cast<int>(i));
    }
  }
  // Reinsert the erased half; everything must be visible again.
  for (std::size_t i = 0; i < keys.size(); i += 2) m[keys[i]] = -1;
  EXPECT_EQ(m.size(), keys.size());
}

// Large-n scale check (ISSUE 8 satellite): one million live keys with
// churn on top. The load-factor invariant (live+tombstones <= half the
// slots) and tombstone compaction must hold at this size — lookups stay
// exact, the table never exceeds 4x the minimal power-of-two capacity,
// and a churn pass over the full population doesn't strand tombstones.
TEST(FlatMap64, MillionKeyChurnKeepsLoadBounded) {
  FlatMap64<std::uint64_t> m;
  const std::uint64_t kLive = 1'000'000;
  for (std::uint64_t k = 0; k < kLive; ++k) m[k * 2654435761u] = k;
  EXPECT_EQ(m.size(), kLive);
  // Power-of-two table, load <= 50%: 1M keys need >= 2^21 slots; growth
  // doubling can at most land one power above the minimum.
  EXPECT_GE(m.slot_count(), 1u << 21);
  EXPECT_LE(m.slot_count(), 1u << 23);
  // Churn: erase + reinsert every key once. Tombstone compaction must
  // absorb the dead slots instead of doubling the table again.
  const std::size_t cap_before = m.slot_count();
  for (std::uint64_t k = 0; k < kLive; ++k) {
    ASSERT_TRUE(m.erase(k * 2654435761u));
    m[k * 2654435761u + 1] = k;
  }
  EXPECT_EQ(m.size(), kLive);
  EXPECT_LE(m.slot_count(), cap_before * 2);
  for (std::uint64_t k = 0; k < kLive; k += 9973) {
    ASSERT_NE(m.find(k * 2654435761u + 1), nullptr);
    EXPECT_EQ(*m.find(k * 2654435761u + 1), k);
    EXPECT_EQ(m.find(k * 2654435761u), nullptr);
  }
}

// The SimConfig::expected_in_flight capacity hint: reserve() presizes so
// inserts up to the hint never rehash, preserves existing entries, and
// ignores shrinking requests.
TEST(FlatMap64, ReserveHintPrSizesAndPreservesEntries) {
  FlatMap64<int> m;
  m[7] = 70;
  m[8] = 80;
  m.reserve(100'000);
  const std::size_t cap = m.slot_count();
  EXPECT_GE(cap, 200'000u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  for (std::uint64_t k = 0; k < 100'000; ++k) m[k + 1000] = 1;
  EXPECT_EQ(m.slot_count(), cap) << "reserve hint did not prevent rehash";
  m.reserve(10);  // shrink request: no-op
  EXPECT_EQ(m.slot_count(), cap);
}

TEST(FlatMap64, ClearThenReuse) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
  m[50] = 2;
  EXPECT_EQ(*m.find(50), 2);
  EXPECT_EQ(m.size(), 1u);
}

}  // namespace
}  // namespace coincidence::sim
