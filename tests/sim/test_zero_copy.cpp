// Zero-copy message plane regression tests (ISSUE 3).
//
//  - A broadcast enqueues n-1 message headers that all alias ONE payload
//    buffer (refcount bumps, not deep copies), and the delivered copies
//    still alias it.
//  - The per-link replay history stores shared payloads: its entries
//    alias buffers that were delivered on the link, so the resident cost
//    is O(window * header) per link, never O(window * payload clone).
//  - SharedBytes is copy-on-write by construction: a mutable deep copy
//    taken via to_bytes() can never affect other holders.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/shared_bytes.h"
#include "sim/simulation.h"

namespace coincidence::sim {
namespace {

/// Keeps a SharedBytes copy of every sent/delivered payload, so buffer
/// identities stay observable (and alive) after the run.
class PayloadRecorder final : public Observer {
 public:
  void on_send(const Message& msg, bool /*sender_correct*/) override {
    sent_.push_back(msg.payload);
  }
  void on_deliver(const Message& msg) override {
    delivered_.push_back(msg.payload);
  }

  std::vector<SharedBytes> sent_;
  std::vector<SharedBytes> delivered_;
};

class Broadcaster final : public Process {
 public:
  void on_start(Context& ctx) override {
    ctx.broadcast("blob", bytes_of("a payload big enough to notice"), 1);
  }
  void on_message(Context&, const Message&) override {}
};

class Silent final : public Process {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, const Message&) override {}
};

TEST(ZeroCopy, BroadcastSharesOnePayloadBuffer) {
  SimConfig cfg;
  cfg.n = 8;
  cfg.seed = 3;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Broadcaster>());
  for (std::size_t i = 1; i < cfg.n; ++i)
    sim.add_process(std::make_unique<Silent>());
  auto rec = std::make_shared<PayloadRecorder>();
  sim.add_observer(rec);

  sim.start();
  ASSERT_EQ(rec->sent_.size(), cfg.n);  // broadcast includes self-delivery
  const void* buffer = rec->sent_[0].buffer_id();
  ASSERT_NE(buffer, nullptr);
  for (const SharedBytes& p : rec->sent_)
    EXPECT_EQ(p.buffer_id(), buffer) << "fan-out deep-copied a payload";

  sim.run();
  // Self-queue delivery bypasses observers: n-1 network deliveries.
  ASSERT_EQ(rec->delivered_.size(), cfg.n - 1);
  for (const SharedBytes& p : rec->delivered_)
    EXPECT_EQ(p.buffer_id(), buffer) << "delivery deep-copied a payload";
}

TEST(ZeroCopy, SharedBytesCopyOnWrite) {
  SharedBytes a(bytes_of("payload"));
  SharedBytes b = a;
  EXPECT_EQ(a.buffer_id(), b.buffer_id());
  EXPECT_EQ(a.use_count(), 2);

  Bytes mut = b.to_bytes();  // the CoW escape hatch: a real copy
  mut[0] = 'X';
  EXPECT_EQ(a.bytes(), bytes_of("payload"));
  EXPECT_EQ(b.bytes(), bytes_of("payload"));
  EXPECT_EQ(a.buffer_id(), b.buffer_id());  // still shared
}

TEST(ZeroCopy, ReplayHistoryAliasesDeliveredBuffers) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.seed = 11;
  const std::size_t kWindow = 4;
  cfg.network = NetworkProfile::uniform(LinkPlan::replaying(0.5, kWindow));
  Simulation sim(cfg);
  for (std::size_t i = 0; i < cfg.n; ++i)
    sim.add_process(std::make_unique<Broadcaster>());
  auto rec = std::make_shared<PayloadRecorder>();
  sim.add_observer(rec);
  sim.start();
  sim.run();

  std::set<const void*> delivered_buffers;
  for (const SharedBytes& p : rec->delivered_)
    if (p.buffer_id() != nullptr) delivered_buffers.insert(p.buffer_id());

  std::size_t links_with_history = 0;
  for (ProcessId from = 0; from < cfg.n; ++from) {
    for (ProcessId to = 0; to < cfg.n; ++to) {
      const std::deque<Message>* history = sim.replay_history_of(from, to);
      if (history == nullptr) continue;
      ++links_with_history;
      // Bounded window…
      EXPECT_LE(history->size(), kWindow);
      // …of headers whose payloads alias delivered buffers: the history
      // never allocates payload clones of its own.
      for (const Message& m : *history) {
        if (m.payload.empty()) continue;
        EXPECT_TRUE(delivered_buffers.count(m.payload.buffer_id()))
            << "history holds a buffer that was never a delivered payload";
      }
    }
  }
  EXPECT_GT(links_with_history, 0u) << "test vacuous: no link recorded";
}

}  // namespace
}  // namespace coincidence::sim
