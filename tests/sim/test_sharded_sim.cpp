// Shard-invariance suite (ISSUE 8 tentpole contract).
//
// The sharded superstep engine replaces the per-delivery adversary choice
// with a hash-addressed schedule whose every decision is a pure function
// of (seed, canonical route order). The contract: the complete observable
// surface of a run — golden fingerprint, structured JSONL trace, metrics
// JSON export, and the decide values themselves — is byte-identical for
// EVERY shard count and EVERY thread count on the same (seed, config).
// These tests sweep shards {1,2,4,8} x threads {1,8} over a whp_coin
// flip, a ba_whp agreement across duplicating/replaying links with silent
// faults, and a chaos-schedule run, comparing every surface against the
// shards=1/threads=1 reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ba/ba_whp.h"
#include "coin/coin_protocol.h"
#include "coin/whp_coin.h"
#include "committee/sampler.h"
#include "core/env.h"
#include "sim/chaos.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace coincidence {
namespace {

struct RunSurface {
  std::string fingerprint;  // decisions + headline metrics + trace hash
  std::string trace_jsonl;  // full structured trace stream
  std::string metrics_json; // Metrics::to_json (detail mode)
  std::string decisions;
};

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

RunSurface surface_of(const sim::Simulation& sim,
                      const sim::TraceRecorder& trace,
                      std::string decisions) {
  RunSurface out;
  std::ostringstream trace_dump;
  trace.dump(trace_dump);
  std::ostringstream fp;
  fp << "decisions=" << decisions << "\n"
     << "correct_words=" << sim.metrics().correct_words() << "\n"
     << "total_words=" << sim.metrics().total_words() << "\n"
     << "messages_sent=" << sim.metrics().messages_sent() << "\n"
     << "deliveries=" << sim.metrics().deliveries() << "\n"
     << "link_duplicates=" << sim.metrics().link_duplicates() << "\n"
     << "link_replays=" << sim.metrics().link_replays() << "\n"
     << "words_by_tag=";
  for (const auto& [tag, words] : sim.metrics().words_by_tag())
    fp << tag << ":" << words << ";";
  fp << "\n"
     << "trace_events=" << trace.size() << "\n"
     << "trace_hash=" << fnv1a(trace_dump.str()) << "\n";
  out.fingerprint = fp.str();
  std::ostringstream jsonl;
  trace.dump_jsonl(jsonl);
  out.trace_jsonl = jsonl.str();
  std::ostringstream mj;
  sim.metrics().to_json(mj);
  out.metrics_json = mj.str();
  out.decisions = std::move(decisions);
  return out;
}

/// Every process gets a private sampler cache — the sharded engine runs
/// handlers concurrently, so the Env-shared CachingSampler must not be
/// used (its cache is unsynchronized).
std::shared_ptr<committee::Sampler> private_sampler(const core::Env& env) {
  return std::make_shared<committee::CachingSampler>(
      env.vrf, env.registry, env.params.sample_prob());
}

RunSurface run_whp_coin(std::size_t shards, std::size_t threads) {
  const std::size_t n = 40;
  core::Env env = core::Env::make_relaxed(n, /*seed=*/101);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.threads = threads;
  sim::Simulation sim(cfg);
  sim.metrics().enable_detail();
  auto trace = std::make_shared<sim::TraceRecorder>();
  sim.add_observer(trace);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 1;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = private_sampler(env);
    sim.add_process(std::make_unique<coin::CoinHost>(
        std::make_unique<coin::WhpCoin>(std::move(ccfg))));
  }
  sim.start();
  sim.run();
  std::string decisions;
  for (crypto::ProcessId i = 0; i < n; ++i) {
    const auto& coin = dynamic_cast<coin::CoinHost&>(sim.process(i)).coin();
    decisions += coin.done() ? ('0' + coin.output()) : '-';
  }
  return surface_of(sim, *trace, std::move(decisions));
}

RunSurface run_ba_whp(std::size_t shards, std::size_t threads) {
  const std::size_t n = 24;
  core::Env env = core::Env::make_relaxed(n, /*seed=*/202);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 2;
  cfg.seed = 9;
  cfg.network.default_link.dup_p = 0.25;
  cfg.network.default_link.max_duplicates = 2;
  cfg.network.default_link.replay_p = 0.15;
  cfg.network.default_link.replay_window = 8;
  cfg.shards = shards;
  cfg.threads = threads;
  sim::Simulation sim(cfg);
  sim.metrics().enable_detail();
  auto trace = std::make_shared<sim::TraceRecorder>();
  sim.add_observer(trace);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    ba::BaWhp::Config bcfg;
    bcfg.tag = "ba";
    bcfg.params = env.params;
    bcfg.vrf = env.vrf;
    bcfg.registry = env.registry;
    bcfg.sampler = private_sampler(env);
    bcfg.signer = env.signer;
    bcfg.max_rounds = 32;
    sim.add_process(std::make_unique<ba::BaWhp>(
        std::move(bcfg), static_cast<ba::Value>(i % 2)));
  }
  sim.corrupt(n - 1, sim::FaultPlan::silent());
  sim.corrupt(n - 2, sim::FaultPlan::silent());
  sim.start();
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i + 2 < n; ++i)
      if (!dynamic_cast<ba::BaWhp&>(sim.process(i)).decided()) return false;
    return true;
  });
  std::string decisions;
  for (crypto::ProcessId i = 0; i + 2 < n; ++i) {
    const auto& p = dynamic_cast<ba::BaWhp&>(sim.process(i));
    decisions += p.decided() ? ('0' + p.decision()) : '-';
  }
  return surface_of(sim, *trace, std::move(decisions));
}

RunSurface run_chaos(std::size_t shards, std::size_t threads) {
  const std::size_t n = 32;
  core::Env env = core::Env::make_relaxed(n, /*seed=*/303);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 4;
  cfg.seed = 21;
  cfg.chaos = sim::ChaosSchedule::preset("combined", n);
  cfg.shards = shards;
  cfg.threads = threads;
  sim::Simulation sim(cfg);
  sim.metrics().enable_detail();
  auto trace = std::make_shared<sim::TraceRecorder>();
  sim.add_observer(trace);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    ba::BaWhp::Config bcfg;
    bcfg.tag = "ba";
    bcfg.params = env.params;
    bcfg.vrf = env.vrf;
    bcfg.registry = env.registry;
    bcfg.sampler = private_sampler(env);
    bcfg.signer = env.signer;
    bcfg.max_rounds = 32;
    sim.add_process(std::make_unique<ba::BaWhp>(
        std::move(bcfg), static_cast<ba::Value>(i % 2)));
  }
  sim.start();
  sim.run_until([&] {
    if (sim.chaos_held() != 0) return false;
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      if (!dynamic_cast<ba::BaWhp&>(sim.process(i)).decided()) return false;
    }
    return true;
  });
  std::string decisions;
  for (crypto::ProcessId i = 0; i < n; ++i) {
    if (sim.is_corrupted(i)) {
      decisions += 'x';
      continue;
    }
    const auto& p = dynamic_cast<ba::BaWhp&>(sim.process(i));
    decisions += p.decided() ? ('0' + p.decision()) : '-';
  }
  return surface_of(sim, *trace, std::move(decisions));
}

void expect_invariant(const char* what,
                      RunSurface (*run)(std::size_t, std::size_t)) {
  const RunSurface ref = run(1, 1);
  EXPECT_NE(ref.decisions.find_first_of("01"), std::string::npos)
      << what << ": reference run decided nothing";
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const RunSurface got = run(shards, threads);
      EXPECT_EQ(got.fingerprint, ref.fingerprint)
          << what << " fingerprint diverged at shards=" << shards
          << " threads=" << threads;
      EXPECT_EQ(got.trace_jsonl, ref.trace_jsonl)
          << what << " trace stream diverged at shards=" << shards
          << " threads=" << threads;
      EXPECT_EQ(got.metrics_json, ref.metrics_json)
          << what << " metrics JSON diverged at shards=" << shards
          << " threads=" << threads;
      EXPECT_EQ(got.decisions, ref.decisions)
          << what << " decisions diverged at shards=" << shards
          << " threads=" << threads;
    }
  }
  // threads > shards must also be harmless (extra workers idle).
  const RunSurface wide = run(2, 8);
  EXPECT_EQ(wide.fingerprint, ref.fingerprint);
}

TEST(ShardedSim, WhpCoinInvariantAcrossShardsAndThreads) {
  expect_invariant("whp_coin", &run_whp_coin);
}

TEST(ShardedSim, BaWhpLossyLinksInvariantAcrossShardsAndThreads) {
  expect_invariant("ba_whp", &run_ba_whp);
}

TEST(ShardedSim, ChaosScheduleInvariantAcrossShardsAndThreads) {
  expect_invariant("chaos", &run_chaos);
}

TEST(ShardedSim, LegacyPathUntouchedByShardConfigZero) {
  // shards=0 must remain the exact legacy loop: the golden fingerprints
  // in test_golden_determinism.cpp pin that; here we only check that a
  // shards=0 run reports no shard telemetry.
  sim::SimConfig cfg;
  cfg.n = 4;
  cfg.seed = 5;
  sim::Simulation sim(cfg);
  EXPECT_FALSE(sim.sharded());
  EXPECT_EQ(sim.shard_count(), 0u);
  EXPECT_EQ(sim.supersteps(), 0u);
  EXPECT_TRUE(sim.shard_stats().empty());
}

TEST(ShardedSim, ShardStatsAccountForEveryDelivery) {
  const RunSurface ref = run_whp_coin(1, 1);  // reference surface
  const std::size_t n = 40;
  core::Env env = core::Env::make_relaxed(n, /*seed=*/101);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  cfg.shards = 4;
  cfg.threads = 1;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 1;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = private_sampler(env);
    sim.add_process(std::make_unique<coin::CoinHost>(
        std::make_unique<coin::WhpCoin>(std::move(ccfg))));
  }
  sim.start();
  sim.run();
  ASSERT_EQ(sim.shard_stats().size(), 4u);
  std::uint64_t total = 0;
  for (const sim::ShardStats& s : sim.shard_stats()) total += s.deliveries;
  EXPECT_EQ(total, sim.metrics().deliveries());
  EXPECT_GT(sim.supersteps(), 0u);
  (void)ref;
}

TEST(ShardedSim, ShardsClampedToProcessCount) {
  sim::SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 7;
  cfg.shards = 16;
  sim::Simulation sim(cfg);
  EXPECT_TRUE(sim.sharded());
  EXPECT_EQ(sim.shard_count(), 3u);
}

}  // namespace
}  // namespace coincidence
