#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::sim {
namespace {

/// Replies "pong" to every "ping" and counts what it saw.
class PingPong final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) {
      for (ProcessId to = 0; to < ctx.n(); ++to)
        if (to != 0) ctx.send(to, "ping", bytes_of("ping"), 1);
    }
  }
  void on_message(Context& ctx, const Message& msg) override {
    if (msg.tag == "ping") {
      ++pings;
      ctx.send(msg.from, "pong", bytes_of("pong"), 1);
    } else if (msg.tag == "pong") {
      ++pongs;
    }
  }
  int pings = 0;
  int pongs = 0;
};

std::unique_ptr<Simulation> make_pingpong(std::size_t n, std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  auto sim = std::make_unique<Simulation>(cfg);
  for (std::size_t i = 0; i < n; ++i)
    sim->add_process(std::make_unique<PingPong>());
  return sim;
}

TEST(Simulation, PingPongRoundTrip) {
  auto sim_ptr = make_pingpong(4, 1);
  Simulation& sim = *sim_ptr;
  sim.start();
  sim.run();
  auto& p0 = dynamic_cast<PingPong&>(sim.process(0));
  EXPECT_EQ(p0.pongs, 3);
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<PingPong&>(sim.process(i)).pings, 1);
}

TEST(Simulation, DeterministicAcrossRuns) {
  for (int trial = 0; trial < 2; ++trial) {
    auto a_ptr = make_pingpong(6, 9);
  Simulation& a = *a_ptr;
    auto b_ptr = make_pingpong(6, 9);
  Simulation& b = *b_ptr;
    a.start();
    b.start();
    a.run();
    b.run();
    EXPECT_EQ(a.metrics().correct_words(), b.metrics().correct_words());
    EXPECT_EQ(a.deliveries(), b.deliveries());
  }
}

TEST(Simulation, SeedChangesSchedule) {
  auto a_ptr = make_pingpong(8, 1);
  Simulation& a = *a_ptr;
  auto b_ptr = make_pingpong(8, 2);
  Simulation& b = *b_ptr;
  a.start();
  b.start();
  // Same totals (same protocol)…
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().messages_sent(), b.metrics().messages_sent());
}

class Broadcaster final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.broadcast("hello", bytes_of("x"), 3);
  }
  void on_message(Context&, const Message& msg) override {
    if (msg.tag == "hello") ++received;
  }
  int received = 0;
};

TEST(Simulation, BroadcastReachesEveryoneIncludingSelf) {
  SimConfig cfg;
  cfg.n = 5;
  Simulation sim(cfg);
  for (int i = 0; i < 5; ++i) sim.add_process(std::make_unique<Broadcaster>());
  sim.start();
  sim.run();
  for (ProcessId i = 0; i < 5; ++i)
    EXPECT_EQ(dynamic_cast<Broadcaster&>(sim.process(i)).received, 1) << i;
  // Word accounting: n * words, self included (§2 accounting).
  EXPECT_EQ(sim.metrics().correct_words(), 5u * 3u);
}

class SelfSender final : public Process {
 public:
  void on_start(Context& ctx) override {
    ctx.send(ctx.self(), "note", bytes_of("n"), 1);
    // Reentrancy guard: the self message must NOT arrive synchronously.
    EXPECT_EQ(notes, 0);
    started = true;
  }
  void on_message(Context&, const Message& msg) override {
    EXPECT_TRUE(started);
    if (msg.tag == "note") ++notes;
  }
  bool started = false;
  int notes = 0;
};

TEST(Simulation, SelfDeliveryIsDeferredNotSynchronous) {
  SimConfig cfg;
  cfg.n = 1;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<SelfSender>());
  sim.start();
  sim.run();
  EXPECT_EQ(dynamic_cast<SelfSender&>(sim.process(0)).notes, 1);
}

TEST(Simulation, StartTwiceThrows) {
  auto sim_ptr = make_pingpong(2, 1);
  Simulation& sim = *sim_ptr;
  sim.start();
  EXPECT_THROW(sim.start(), PreconditionError);
}

TEST(Simulation, StartWithMissingProcessesThrows) {
  SimConfig cfg;
  cfg.n = 3;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<PingPong>());
  EXPECT_THROW(sim.start(), PreconditionError);
}

TEST(Simulation, RunUntilPredicate) {
  auto sim_ptr = make_pingpong(4, 1);
  Simulation& sim = *sim_ptr;
  sim.start();
  bool reached = sim.run_until(
      [&] { return dynamic_cast<PingPong&>(sim.process(0)).pongs >= 1; });
  EXPECT_TRUE(reached);
}

TEST(Simulation, RunUntilUnreachableReturnsFalse) {
  auto sim_ptr = make_pingpong(4, 1);
  Simulation& sim = *sim_ptr;
  sim.start();
  EXPECT_FALSE(sim.run_until([] { return false; }));
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulation, InjectRequiresCorruptedSender) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.f = 1;
  Simulation sim(cfg);
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<PingPong>());
  sim.start();
  EXPECT_THROW(sim.inject(0, 1, "ping", bytes_of("ping"), 1),
               PreconditionError);
  sim.corrupt(0, FaultPlan::silent());
  sim.inject(0, 1, "ping", bytes_of("ping"), 1);
  sim.run();
  EXPECT_EQ(dynamic_cast<PingPong&>(sim.process(1)).pings, 2);  // start + inject
}

TEST(Simulation, InjectedWordsDoNotCountAsCorrect) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.f = 1;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Broadcaster>());
  sim.add_process(std::make_unique<Broadcaster>());
  sim.start();
  sim.corrupt(1, FaultPlan::silent());
  std::uint64_t before = sim.metrics().correct_words();
  sim.inject(1, 0, "hello", bytes_of("x"), 7);
  EXPECT_EQ(sim.metrics().correct_words(), before);
  EXPECT_GT(sim.metrics().total_words(), before);
}

class DepthProbe final : public Process {
 public:
  void on_start(Context& ctx) override {
    // Build a chain 0 -> 1 -> 2 -> ... -> n-1.
    if (ctx.self() == 0) ctx.send(1, "chain", {}, 1);
  }
  void on_message(Context& ctx, const Message& msg) override {
    depth_at_receive = msg.causal_depth;
    ProcessId next = ctx.self() + 1;
    if (next < ctx.n()) ctx.send(next, "chain", {}, 1);
  }
  std::uint64_t depth_at_receive = 0;
};

TEST(Simulation, CausalDepthGrowsAlongChains) {
  SimConfig cfg;
  cfg.n = 5;
  Simulation sim(cfg);
  for (int i = 0; i < 5; ++i) sim.add_process(std::make_unique<DepthProbe>());
  sim.start();
  sim.run();
  for (ProcessId i = 1; i < 5; ++i) {
    EXPECT_EQ(dynamic_cast<DepthProbe&>(sim.process(i)).depth_at_receive, i)
        << "hop " << i;
  }
  EXPECT_EQ(sim.depth_of(4), 4u);
}

TEST(Simulation, MaxDeliveriesGuardsLivelock) {
  // Two processes ping each other forever.
  class Forever final : public Process {
   public:
    void on_start(Context& ctx) override {
      ctx.send(1 - ctx.self(), "p", {}, 1);
    }
    void on_message(Context& ctx, const Message& msg) override {
      ctx.send(msg.from, "p", {}, 1);
    }
  };
  SimConfig cfg;
  cfg.n = 2;
  cfg.max_deliveries = 100;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Forever>());
  sim.add_process(std::make_unique<Forever>());
  sim.start();
  EXPECT_THROW(sim.run(), ConfigError);
}

}  // namespace
}  // namespace coincidence::sim
