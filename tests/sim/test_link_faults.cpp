// Lossy-link injection (sim/link.h) and delivery-event timers: the
// substrate-level half of the chaos machinery. Everything here is seeded
// and replayable — the same config must produce the same drops.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "sim/simulation.h"

namespace coincidence::sim {
namespace {

/// Everyone broadcasts one "v" at start and counts receipts.
class Counter final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.broadcast("v", bytes_of("v"), 1); }
  void on_message(Context&, const Message& msg) override {
    if (msg.tag == "v") ++received;
  }
  int received = 0;
};

/// Broadcasts `rounds` waves: one at start, the next each time it has
/// heard a full wave — enough sustained per-link traffic for replays.
class Chatter final : public Process {
 public:
  explicit Chatter(int rounds) : rounds_(rounds) {}
  void on_start(Context& ctx) override {
    ctx.broadcast("c/0", bytes_of("c"), 1);
  }
  void on_message(Context& ctx, const Message& msg) override {
    ++received;
    if (++heard_ % ctx.n() == 0 && sent_ < rounds_) {
      ctx.broadcast("c/" + std::to_string(sent_), bytes_of("c"), 1);
      ++sent_;
    }
  }
  int received = 0;

 private:
  int rounds_;
  int heard_ = 0;
  int sent_ = 1;
};

template <typename P, typename... Args>
std::unique_ptr<Simulation> make_sim(std::size_t n, NetworkProfile net,
                                     std::uint64_t seed, Args&&... args) {
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.network = std::move(net);
  auto sim = std::make_unique<Simulation>(cfg);
  for (std::size_t i = 0; i < n; ++i)
    sim->add_process(std::make_unique<P>(args...));
  return sim;
}

int received(Simulation& sim, ProcessId id) {
  if (auto* c = dynamic_cast<Counter*>(&sim.process(id))) return c->received;
  return dynamic_cast<Chatter&>(sim.process(id)).received;
}

TEST(LinkFaults, LosslessProfileMatchesDefault) {
  auto plain = make_sim<Counter>(4, NetworkProfile{}, 5);
  auto lossless = make_sim<Counter>(4, NetworkProfile::lossless(), 5);
  for (auto* sim : {plain.get(), lossless.get()}) {
    sim->start();
    sim->run();
  }
  for (ProcessId i = 0; i < 4; ++i)
    EXPECT_EQ(received(*plain, i), received(*lossless, i)) << i;
  EXPECT_EQ(plain->metrics().deliveries(), lossless->metrics().deliveries());
  EXPECT_EQ(lossless->metrics().link_drops(), 0u);
  EXPECT_EQ(lossless->metrics().link_duplicates(), 0u);
  EXPECT_EQ(lossless->metrics().link_replays(), 0u);
}

TEST(LinkFaults, FullDropLosesAllCrossTraffic) {
  auto sim = make_sim<Counter>(4, NetworkProfile::uniform(LinkPlan::lossy(1.0)),
                               7);
  sim->start();
  sim->run();
  // Self-links are exempt: everyone still gets exactly their own copy.
  for (ProcessId i = 0; i < 4; ++i) EXPECT_EQ(received(*sim, i), 1) << i;
  EXPECT_EQ(sim->metrics().link_drops(), 4u * 3u);
  EXPECT_EQ(sim->metrics().link_dropped_words(), 4u * 3u);
  // The senders were still charged: drops happen after the send event.
  EXPECT_EQ(sim->metrics().correct_words(), 4u * 4u);
}

TEST(LinkFaults, PartialDropIsSeededAndCounted) {
  auto sim = make_sim<Counter>(
      6, NetworkProfile::uniform(LinkPlan::lossy(0.5)), 11);
  sim->start();
  sim->run();
  const std::uint64_t drops = sim->metrics().link_drops();
  EXPECT_GT(drops, 0u);
  EXPECT_LT(drops, 6u * 5u);
  std::uint64_t delivered_cross = 0;
  for (ProcessId i = 0; i < 6; ++i)
    delivered_cross += static_cast<std::uint64_t>(received(*sim, i)) - 1;
  EXPECT_EQ(delivered_cross + drops, 6u * 5u);
}

TEST(LinkFaults, CertainDuplicationDeliversEveryMessageTwice) {
  auto sim = make_sim<Counter>(
      4, NetworkProfile::uniform(LinkPlan::duplicating(1.0, 1)), 13);
  sim->start();
  sim->run();
  for (ProcessId i = 0; i < 4; ++i)
    EXPECT_EQ(received(*sim, i), 1 + 2 * 3) << i;  // self once, peers twice
  EXPECT_EQ(sim->metrics().link_duplicates(), 4u * 3u);
  // Network-made copies charge no words to anyone.
  EXPECT_EQ(sim->metrics().correct_words(), 4u * 4u);
}

TEST(LinkFaults, MaxDuplicatesBoundsExtraCopies) {
  auto sim = make_sim<Counter>(
      4, NetworkProfile::uniform(LinkPlan::duplicating(1.0, 3)), 17);
  sim->start();
  sim->run();
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_GE(received(*sim, i), 1 + 2 * 3) << i;
    EXPECT_LE(received(*sim, i), 1 + 4 * 3) << i;
  }
}

TEST(LinkFaults, ReplayResurrectsDeliveredMessages) {
  auto sim = make_sim<Chatter>(
      4, NetworkProfile::uniform(LinkPlan::replaying(0.9)), 19, /*rounds=*/6);
  sim->start();
  sim->run();
  EXPECT_GT(sim->metrics().link_replays(), 0u);
  // Replays are extra pool deliveries of old traffic on top of the
  // originals. All traffic is broadcasts, so of every 4 sends exactly 3
  // cross the network (the 4th is the free self copy).
  const std::uint64_t cross = sim->metrics().messages_sent() * 3 / 4;
  EXPECT_EQ(sim->metrics().deliveries(), cross + sim->metrics().link_replays());
}

TEST(LinkFaults, PerLinkOverrideAffectsOnlyThatLink) {
  NetworkProfile net;  // lossless except 0 -> 1
  net.overrides[{0, 1}] = LinkPlan::lossy(1.0);
  auto sim = make_sim<Counter>(4, net, 23);
  sim->start();
  sim->run();
  EXPECT_EQ(received(*sim, 1), 3);  // lost exactly 0's broadcast copy
  EXPECT_EQ(received(*sim, 0), 4);
  EXPECT_EQ(received(*sim, 2), 4);
  EXPECT_EQ(received(*sim, 3), 4);
  EXPECT_EQ(sim->metrics().link_drops(), 1u);
}

TEST(LinkFaults, SameSeedSameChaos) {
  LinkPlan plan;
  plan.drop_p = 0.3;
  plan.dup_p = 0.3;
  plan.max_duplicates = 2;
  plan.replay_p = 0.2;
  auto run = [&](std::uint64_t seed) {
    auto sim = make_sim<Chatter>(5, NetworkProfile::uniform(plan), seed,
                                 /*rounds=*/5);
    sim->start();
    sim->run();
    return sim;
  };
  auto a = run(31);
  auto b = run(31);
  for (ProcessId i = 0; i < 5; ++i)
    EXPECT_EQ(received(*a, i), received(*b, i)) << i;
  EXPECT_EQ(a->metrics().deliveries(), b->metrics().deliveries());
  EXPECT_EQ(a->metrics().link_drops(), b->metrics().link_drops());
  EXPECT_EQ(a->metrics().link_duplicates(), b->metrics().link_duplicates());
  EXPECT_EQ(a->metrics().link_replays(), b->metrics().link_replays());
  EXPECT_EQ(a->metrics().messages_sent(), b->metrics().messages_sent());
}

// ------------------------------------------------ delivery-event timers --

/// Schedules one wakeup at start and records when it fired.
class Sleeper final : public Process {
 public:
  explicit Sleeper(std::uint64_t delay) : delay_(delay) {}
  void on_start(Context& ctx) override { ctx.schedule_wakeup(delay_); }
  void on_message(Context&, const Message&) override {}
  void on_wakeup(Context& ctx) override {
    ++wakeups;
    fired_at = ctx.now();
  }
  int wakeups = 0;
  std::uint64_t fired_at = 0;

 private:
  std::uint64_t delay_;
};

TEST(LinkFaults, WakeupFiresOnIdleNetwork) {
  // No messages at all: the runtime must advance "time" to the timer.
  SimConfig cfg;
  cfg.n = 1;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Sleeper>(25));
  sim.start();
  sim.run();
  auto& p = dynamic_cast<Sleeper&>(sim.process(0));
  EXPECT_EQ(p.wakeups, 1);
  EXPECT_GE(p.fired_at, 25u);
}

TEST(LinkFaults, WakeupDiesWithCrashedProcess) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.f = 1;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Sleeper>(10));
  sim.add_process(std::make_unique<Sleeper>(10));
  sim.start();
  sim.corrupt(0, FaultPlan::crash());
  sim.run();
  EXPECT_EQ(dynamic_cast<Sleeper&>(sim.process(0)).wakeups, 0);
  EXPECT_EQ(dynamic_cast<Sleeper&>(sim.process(1)).wakeups, 1);
}

/// Sends one normal message and one retransmission of it.
class Repeater final : public Process {
 public:
  void on_start(Context& ctx) override {
    ctx.send(1, "r", bytes_of("r"), 3);
    ctx.send_retransmission(1, "r", bytes_of("r"), 3);
  }
  void on_message(Context&, const Message&) override {}
};

TEST(LinkFaults, RetransmissionWordsAccountedSeparately) {
  SimConfig cfg;
  cfg.n = 2;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Repeater>());
  sim.add_process(std::make_unique<Repeater>());
  sim.start();
  sim.run();
  // Each process: one first-transmission (3 words) + one retransmission.
  EXPECT_EQ(sim.metrics().correct_words(), 2u * 3u);
  EXPECT_EQ(sim.metrics().retransmits(), 2u);
  EXPECT_EQ(sim.metrics().retransmit_words(), 2u * 3u);
  EXPECT_EQ(sim.metrics().total_words(), 2u * 6u);
}

}  // namespace
}  // namespace coincidence::sim
