// Fixed-seed golden fingerprints (ISSUE 3 satellite).
//
// The zero-copy message plane (TagTable interning + SharedBytes payloads
// + flat-hash containers) must be *bit-for-bit* behaviour-preserving:
// same decisions, same word counts, same per-tag word split, same event
// trace. These tests pin two workloads — a standalone whp_coin flip and
// a ba_whp agreement over duplicating/replaying links — to fingerprint
// strings captured on the pre-refactor tree. Any scheduling, accounting,
// or payload drift changes the string.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "ba/ba_whp.h"
#include "coin/coin_protocol.h"
#include "coin/whp_coin.h"
#include "core/env.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace coincidence {
namespace {

/// FNV-1a over the trace's canonical dump — one number pinning the exact
/// event sequence (ids, endpoints, tags, word counts, sender flags).
std::uint64_t trace_hash(const sim::TraceRecorder& trace) {
  std::ostringstream os;
  trace.dump(os);
  std::uint64_t h = 14695981039346656037ull;
  for (char c : os.str()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Canonical one-line-per-field fingerprint of a finished run.
std::string fingerprint(const sim::Simulation& sim,
                        const sim::TraceRecorder& trace,
                        const std::string& decisions) {
  std::ostringstream os;
  os << "decisions=" << decisions << "\n";
  os << "correct_words=" << sim.metrics().correct_words() << "\n";
  os << "total_words=" << sim.metrics().total_words() << "\n";
  os << "messages_sent=" << sim.metrics().messages_sent() << "\n";
  os << "deliveries=" << sim.metrics().deliveries() << "\n";
  os << "link_duplicates=" << sim.metrics().link_duplicates() << "\n";
  os << "link_replays=" << sim.metrics().link_replays() << "\n";
  os << "words_by_tag=";
  for (const auto& [tag, words] : sim.metrics().words_by_tag())
    os << tag << ":" << words << ";";
  os << "\n";
  os << "trace_events=" << trace.size() << "\n";
  os << "trace_hash=" << trace_hash(trace) << "\n";
  return os.str();
}

TEST(GoldenDeterminism, WhpCoinReliableSeed11) {
  const std::size_t n = 40;
  core::Env env = core::Env::make_relaxed(n, /*seed=*/101);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  sim::Simulation sim(cfg);
  auto trace = std::make_shared<sim::TraceRecorder>();
  sim.add_observer(trace);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 1;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = env.sampler;
    sim.add_process(std::make_unique<coin::CoinHost>(
        std::make_unique<coin::WhpCoin>(std::move(ccfg))));
  }
  sim.start();
  sim.run();

  std::string decisions;
  for (crypto::ProcessId i = 0; i < n; ++i) {
    const auto& coin = dynamic_cast<coin::CoinHost&>(sim.process(i)).coin();
    decisions += coin.done() ? ('0' + coin.output()) : '-';
  }

  // Captured on the pre-refactor tree (PR 2 tip, commit cfe282f).
  const std::string expected =
      "decisions=0000000000000000000000000000000000000000\n"
      "correct_words=6600\n"
      "total_words=6600\n"
      "messages_sent=2200\n"
      "deliveries=2145\n"
      "link_duplicates=0\n"
      "link_replays=0\n"
      "words_by_tag=first:3240;second:3360;\n"
      "trace_events=4345\n"
      "trace_hash=4177397218885786687\n";
  EXPECT_EQ(fingerprint(sim, *trace, decisions), expected);
}

TEST(GoldenDeterminism, BaWhpDupReplaySeed9) {
  const std::size_t n = 24;
  core::Env env = core::Env::make_relaxed(n, /*seed=*/202);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 2;
  cfg.seed = 9;
  // Duplicating + replaying (never dropping) links: exercises the
  // replay-history and duplicate paths while preserving liveness.
  cfg.network.default_link.dup_p = 0.25;
  cfg.network.default_link.max_duplicates = 2;
  cfg.network.default_link.replay_p = 0.15;
  cfg.network.default_link.replay_window = 8;
  sim::Simulation sim(cfg);
  auto trace = std::make_shared<sim::TraceRecorder>();
  sim.add_observer(trace);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    ba::BaWhp::Config bcfg;
    bcfg.tag = "ba";
    bcfg.params = env.params;
    bcfg.vrf = env.vrf;
    bcfg.registry = env.registry;
    bcfg.sampler = env.sampler;
    bcfg.signer = env.signer;
    bcfg.max_rounds = 32;
    sim.add_process(std::make_unique<ba::BaWhp>(
        std::move(bcfg), static_cast<ba::Value>(i % 2)));
  }
  sim.corrupt(n - 1, sim::FaultPlan::silent());
  sim.corrupt(n - 2, sim::FaultPlan::silent());
  sim.start();
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i + 2 < n; ++i)
      if (!dynamic_cast<ba::BaWhp&>(sim.process(i)).decided()) return false;
    return true;
  });

  std::string decisions;
  for (crypto::ProcessId i = 0; i + 2 < n; ++i) {
    const auto& p = dynamic_cast<ba::BaWhp&>(sim.process(i));
    decisions += p.decided() ? ('0' + p.decision()) : '-';
  }

  // Captured on the pre-refactor tree (PR 2 tip, commit cfe282f).
  const std::string expected =
      "decisions=1111111111111111111111\n"
      "correct_words=53328\n"
      "total_words=53328\n"
      "messages_sent=5280\n"
      "deliveries=6798\n"
      "link_duplicates=1928\n"
      "link_replays=626\n"
      "words_by_tag=echo:4752;first:1584;init:3168;ok:42240;second:1584;\n"
      "trace_events=12080\n"
      "trace_hash=9430220647100695956\n";
  EXPECT_EQ(fingerprint(sim, *trace, decisions), expected);
}

}  // namespace
}  // namespace coincidence
