#include "sim/pending_pool.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace coincidence::sim {
namespace {

Message mk(std::uint64_t id, ProcessId from, ProcessId to,
           std::uint64_t seq) {
  Message m;
  m.id = id;
  m.from = from;
  m.to = to;
  m.tag = "t";
  m.send_seq = seq;
  return m;
}

TEST(PendingPool, PushTakeRoundTrip) {
  PendingPool pool;
  pool.push(mk(1, 0, 1, 0), 0);
  EXPECT_EQ(pool.size(), 1u);
  Message m = pool.take(0);
  EXPECT_EQ(m.id, 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(PendingPool, OldestTracksEnqueueTick) {
  PendingPool pool;
  pool.push(mk(1, 0, 1, 0), 5);
  pool.push(mk(2, 0, 1, 1), 3);  // older tick
  pool.push(mk(3, 0, 1, 2), 9);
  EXPECT_EQ(pool.enqueue_tick(pool.oldest_index()), 3u);
}

TEST(PendingPool, OldestSurvivesSwapRemove) {
  PendingPool pool;
  for (std::uint64_t i = 0; i < 10; ++i)
    pool.push(mk(i + 1, 0, 1, i), i);
  // Remove a few from the middle; oldest must stay correct throughout.
  (void)pool.take(3);
  (void)pool.take(0);
  std::size_t oldest = pool.oldest_index();
  std::uint64_t min_tick = ~0ULL;
  for (std::size_t i = 0; i < pool.size(); ++i)
    min_tick = std::min(min_tick, pool.enqueue_tick(i));
  EXPECT_EQ(pool.enqueue_tick(oldest), min_tick);
}

TEST(PendingPool, OldestAfterTakingOldestRepeatedly) {
  PendingPool pool;
  for (std::uint64_t i = 0; i < 5; ++i) pool.push(mk(i + 1, 0, 1, i), i);
  for (std::uint64_t expect = 0; expect < 5; ++expect) {
    std::size_t idx = pool.oldest_index();
    EXPECT_EQ(pool.enqueue_tick(idx), expect);
    (void)pool.take(idx);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(PendingPool, MetadataAccessors) {
  PendingPool pool;
  Message m = mk(7, 3, 4, 11);
  m.words = 5;
  pool.push(std::move(m), 2);
  EXPECT_EQ(pool.from(0), 3u);
  EXPECT_EQ(pool.to(0), 4u);
  EXPECT_EQ(pool.tag(0), "t");
  EXPECT_EQ(pool.words(0), 5u);
  EXPECT_EQ(pool.send_seq(0), 11u);
  EXPECT_EQ(pool.enqueue_tick(0), 2u);
}

TEST(PendingPool, TakeBadIndexThrows) {
  PendingPool pool;
  EXPECT_THROW(pool.take(0), PreconditionError);
  EXPECT_THROW(pool.oldest_index(), PreconditionError);
}

TEST(PendingPool, HeapCompactionBoundsStaleEntries) {
  // Churn a small live set through tens of thousands of push/take pairs:
  // every take leaves a stale heap entry behind, so without compaction
  // the heap would end ~20000 entries deep. The rebuild threshold caps
  // it at 2*(live+8) before each push (+1 for the push itself, +2 for
  // takes since the last push).
  PendingPool pool;
  std::size_t max_heap = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    pool.push(mk(i + 1, 0, 1, i), i);
    if (pool.size() > 4) (void)pool.take(pool.oldest_index());
    max_heap = std::max(max_heap, pool.heap_size());
    ASSERT_LE(pool.heap_size(), 2 * (pool.size() + 8) + 3);
  }
  EXPECT_LT(max_heap, 64u);

  // Rebuilds must not corrupt the oldest-message order.
  std::uint64_t min_tick = ~0ULL;
  for (std::size_t i = 0; i < pool.size(); ++i)
    min_tick = std::min(min_tick, pool.enqueue_tick(i));
  EXPECT_EQ(pool.enqueue_tick(pool.oldest_index()), min_tick);
}

}  // namespace
}  // namespace coincidence::sim
