// Observer telemetry hooks (ISSUE 4 tentpole): on_decide / on_round /
// on_adversary_choice fire at the documented points, carry the right
// payloads, and never perturb the run they observe.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/runner.h"
#include "sim/observer.h"

namespace coincidence {
namespace {

using core::Protocol;
using core::RunInstruments;
using core::RunOptions;
using core::RunReport;

class HookCounter final : public sim::Observer {
 public:
  std::vector<sim::DecideEvent> decides;
  std::vector<std::pair<sim::ProcessId, std::uint64_t>> rounds;
  std::size_t choices = 0;
  std::size_t forced = 0;
  std::size_t delivers = 0;
  std::uint64_t max_age = 0;

  void on_deliver(const sim::Message&) override { ++delivers; }
  void on_decide(const sim::DecideEvent& event) override {
    decides.push_back(event);
  }
  void on_round(sim::ProcessId who, std::uint64_t round) override {
    rounds.emplace_back(who, round);
  }
  void on_adversary_choice(const sim::MessageMeta& msg,
                           bool forced_by_fairness) override {
    ++choices;
    if (forced_by_fairness) ++forced;
    if (msg.age > max_age) max_age = msg.age;
  }
};

TEST(ObserverHooks, DecideRoundAndChoiceFireWithPayloads) {
  RunOptions options;
  options.protocol = Protocol::kBracha;
  options.n = 4;
  options.seed = 5;
  options.inputs.assign(4, ba::kOne);

  auto hooks = std::make_shared<HookCounter>();
  RunInstruments instruments;
  instruments.observers.push_back(hooks);
  RunReport report = core::run_agreement(options, instruments);
  ASSERT_TRUE(report.all_correct_decided);
  ASSERT_TRUE(report.decision.has_value());

  // Every correct process reported its decision through note_decide.
  // Sub-protocols (here: the RBC instances under Bracha) report their
  // own decision points with their own scopes and values, so the BA
  // outcome check keys on the top-level scope only.
  ASSERT_GE(hooks->decides.size(), options.n);
  std::size_t top_level = 0;
  for (const auto& d : hooks->decides) {
    EXPECT_LT(d.who, options.n);
    if (!d.correct || d.scope.str() != "bracha") continue;
    ++top_level;
    EXPECT_EQ(d.value, *report.decision);
  }
  EXPECT_EQ(top_level, options.n);

  // on_adversary_choice fires once per network delivery, just before
  // on_deliver (self-queue deliveries appear in neither).
  EXPECT_EQ(hooks->choices, hooks->delivers);
  EXPECT_GT(hooks->choices, 0u);
}

TEST(ObserverHooks, RoundTransitionsReportedWhenProtocolAdvances) {
  // Split inputs force Bracha through coin flips, so correct processes
  // must enter later rounds before converging.
  RunOptions options;
  options.protocol = Protocol::kBracha;
  options.n = 4;
  options.seed = 11;
  options.inputs = {ba::kZero, ba::kOne, ba::kZero, ba::kOne};

  auto hooks = std::make_shared<HookCounter>();
  RunInstruments instruments;
  instruments.observers.push_back(hooks);
  RunReport report = core::run_agreement(options, instruments);
  ASSERT_TRUE(report.all_correct_decided);
  ASSERT_FALSE(hooks->rounds.empty());
  for (const auto& [who, round] : hooks->rounds) {
    EXPECT_LT(who, options.n);
    EXPECT_GE(round, 1u);
  }
}

TEST(ObserverHooks, CorruptedReportersAreFlaggedNotCounted) {
  RunOptions options;
  options.protocol = Protocol::kBaWhp;
  options.n = 32;
  options.seed = 3;
  options.silent = 2;
  options.inputs.assign(32, ba::kOne);

  auto hooks = std::make_shared<HookCounter>();
  RunInstruments instruments;
  instruments.observers.push_back(hooks);
  RunReport report = core::run_agreement(options, instruments);
  ASSERT_TRUE(report.all_correct_decided);

  // The paper's duration metric maximises over *correct* decision
  // events only; corrupted reporters carry correct=false so observers
  // can tell them apart, and Metrics must have skipped them.
  for (const auto& d : hooks->decides) {
    if (!d.correct) EXPECT_GE(d.who, options.n - 2);
  }
  std::size_t correct_top_level = 0;
  for (const auto& d : hooks->decides)
    if (d.correct && d.scope.str() == "ba") ++correct_top_level;
  EXPECT_EQ(correct_top_level, options.n - 2);
}

TEST(ObserverHooks, ObserversDoNotPerturbTheRun) {
  RunOptions options;
  options.protocol = Protocol::kBenOr;
  options.n = 7;
  options.seed = 17;
  options.inputs.assign(7, ba::kOne);

  RunReport bare = core::run_agreement(options);

  auto hooks = std::make_shared<HookCounter>();
  RunInstruments instruments;
  instruments.observers.push_back(hooks);
  instruments.detailed_metrics = true;
  RunReport instrumented = core::run_agreement(options, instruments);

  EXPECT_EQ(bare.all_correct_decided, instrumented.all_correct_decided);
  EXPECT_EQ(bare.decision, instrumented.decision);
  EXPECT_EQ(bare.correct_words, instrumented.correct_words);
  EXPECT_EQ(bare.messages, instrumented.messages);
  EXPECT_EQ(bare.duration, instrumented.duration);
  EXPECT_EQ(bare.words_by_tag, instrumented.words_by_tag);
}

}  // namespace
}  // namespace coincidence
