#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace coincidence::sim {
namespace {

Message msg(std::string tag, std::size_t words) {
  Message m;
  m.tag = std::move(tag);
  m.words = words;
  return m;
}

TEST(Metrics, CorrectVsTotalWords) {
  Metrics m;
  m.record_send(msg("a/first", 2), true);
  m.record_send(msg("a/first", 2), false);  // Byzantine sender
  EXPECT_EQ(m.correct_words(), 2u);
  EXPECT_EQ(m.total_words(), 4u);
  EXPECT_EQ(m.messages_sent(), 2u);
}

TEST(Metrics, BucketsByLastTagComponent) {
  Metrics m;
  m.record_send(msg("ba/3/coin/first", 2), true);
  m.record_send(msg("ba/4/coin/first", 3), true);
  m.record_send(msg("ba/3/a1/init", 1), true);
  m.record_send(msg("plain", 5), true);
  const auto& buckets = m.words_by_tag();
  EXPECT_EQ(buckets.at("first"), 5u);
  EXPECT_EQ(buckets.at("init"), 1u);
  EXPECT_EQ(buckets.at("plain"), 5u);
}

TEST(Metrics, ByzantineWordsNotBucketed) {
  Metrics m;
  m.record_send(msg("x/echo", 3), false);
  EXPECT_TRUE(m.words_by_tag().empty());
}

TEST(Metrics, DecisionDepthTracksMaximum) {
  Metrics m;
  m.record_decision_depth(5);
  m.record_decision_depth(3);
  m.record_decision_depth(9);
  EXPECT_EQ(m.duration(), 9u);
}

TEST(Metrics, DeliveriesCounted) {
  Metrics m;
  m.record_delivery();
  m.record_delivery();
  EXPECT_EQ(m.deliveries(), 2u);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m;
  m.record_send(msg("a/b", 4), true);
  m.record_delivery();
  m.record_decision_depth(7);
  m.reset();
  EXPECT_EQ(m.correct_words(), 0u);
  EXPECT_EQ(m.total_words(), 0u);
  EXPECT_EQ(m.messages_sent(), 0u);
  EXPECT_EQ(m.deliveries(), 0u);
  EXPECT_EQ(m.duration(), 0u);
  EXPECT_TRUE(m.words_by_tag().empty());
}

}  // namespace
}  // namespace coincidence::sim
