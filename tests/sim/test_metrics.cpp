#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace coincidence::sim {
namespace {

Message msg(std::string tag, std::size_t words) {
  Message m;
  m.tag = std::move(tag);
  m.words = words;
  return m;
}

TEST(Metrics, CorrectVsTotalWords) {
  Metrics m;
  m.record_send(msg("a/first", 2), true);
  m.record_send(msg("a/first", 2), false);  // Byzantine sender
  EXPECT_EQ(m.correct_words(), 2u);
  EXPECT_EQ(m.total_words(), 4u);
  EXPECT_EQ(m.messages_sent(), 2u);
}

TEST(Metrics, BucketsByLastTagComponent) {
  Metrics m;
  m.record_send(msg("ba/3/coin/first", 2), true);
  m.record_send(msg("ba/4/coin/first", 3), true);
  m.record_send(msg("ba/3/a1/init", 1), true);
  m.record_send(msg("plain", 5), true);
  const auto& buckets = m.words_by_tag();
  EXPECT_EQ(buckets.at("first"), 5u);
  EXPECT_EQ(buckets.at("init"), 1u);
  EXPECT_EQ(buckets.at("plain"), 5u);
}

TEST(Metrics, ByzantineWordsNotBucketed) {
  Metrics m;
  m.record_send(msg("x/echo", 3), false);
  EXPECT_TRUE(m.words_by_tag().empty());
}

TEST(Metrics, DecisionDepthTracksMaximum) {
  Metrics m;
  m.record_decision_depth(5);
  m.record_decision_depth(3);
  m.record_decision_depth(9);
  EXPECT_EQ(m.duration(), 9u);
}

TEST(Metrics, DeliveriesCounted) {
  Metrics m;
  m.record_delivery();
  m.record_delivery();
  EXPECT_EQ(m.deliveries(), 2u);
}

TEST(Metrics, PhaseOfTagWildcardsNumericComponents) {
  EXPECT_EQ(phase_of_tag("ba/3/coin/first"), "ba/*/coin/first");
  EXPECT_EQ(phase_of_tag("ba/12/a1/init"), "ba/*/a1/init");
  EXPECT_EQ(phase_of_tag("plain"), "plain");
  EXPECT_EQ(phase_of_tag("7"), "*");
  EXPECT_EQ(phase_of_tag("rbc/0/echo"), "rbc/*/echo");
  EXPECT_EQ(phase_of_tag("a/b2/c"), "a/b2/c");  // mixed digits stay put
}

TEST(Metrics, RoundOfTagReadsFirstNumericComponent) {
  EXPECT_EQ(round_of_tag("ba/3/coin/first"), 3u);
  EXPECT_EQ(round_of_tag("mmr/17/aux"), 17u);
  EXPECT_EQ(round_of_tag("plain"), std::nullopt);
  EXPECT_EQ(round_of_tag("a/b/c"), std::nullopt);
  EXPECT_EQ(round_of_tag("0/x"), 0u);
}

TEST(Metrics, WordsByPhasePartitionsCorrectWordsExactly) {
  Metrics m;
  m.record_send(msg("ba/1/coin/first", 3), true);
  m.record_send(msg("ba/2/coin/first", 4), true);  // same phase, new round
  m.record_send(msg("ba/1/a1/init", 2), true);
  m.record_send(msg("plain", 5), true);
  m.record_send(msg("ba/1/coin/first", 100), false);  // Byzantine: excluded
  const auto phases = m.words_by_phase();
  EXPECT_EQ(phases.at("ba/*/coin/first"), 7u);
  EXPECT_EQ(phases.at("ba/*/a1/init"), 2u);
  EXPECT_EQ(phases.at("plain"), 5u);
  std::uint64_t phase_sum = 0;
  for (const auto& [k, v] : phases) phase_sum += v;
  EXPECT_EQ(phase_sum, m.correct_words());

  const auto rounds = m.words_by_round();
  EXPECT_EQ(rounds.at(1), 5u);
  EXPECT_EQ(rounds.at(2), 4u);
  EXPECT_EQ(rounds.at(UINT64_MAX), 5u);  // "plain" has no round component
  std::uint64_t round_sum = 0;
  for (const auto& [k, v] : rounds) round_sum += v;
  EXPECT_EQ(round_sum, m.correct_words());
}

TEST(Metrics, DetailOffRecordsNoHistograms) {
  Metrics m;
  EXPECT_FALSE(m.detail_enabled());
  m.record_send(msg("a/b", 4), true);
  m.record_delivery(msg("a/b", 4), /*latency=*/9);
  EXPECT_TRUE(m.by_tag().empty());
  EXPECT_TRUE(m.by_phase().empty());
  EXPECT_EQ(m.deliveries(), 1u);  // headline counters unaffected
}

TEST(Metrics, DetailHistogramsTrackWordsDepthLatency) {
  Metrics m;
  m.enable_detail();
  Message sent = msg("ba/1/coin/first", 3);
  sent.causal_depth = 5;
  m.record_send(sent, true);
  m.record_delivery(sent, /*latency=*/17);
  m.record_send(msg("ba/2/coin/first", 4), true);

  const auto tags = m.by_tag();
  ASSERT_TRUE(tags.count("ba/1/coin/first"));
  const auto& row = tags.at("ba/1/coin/first");
  EXPECT_EQ(row.messages, 1u);
  EXPECT_EQ(row.correct_words, 3u);
  EXPECT_EQ(row.words.total(), 1u);
  EXPECT_EQ(row.depth.max(), 5u);
  EXPECT_EQ(row.latency.sum(), 17u);

  // Phase rollup merges the two rounds of the same phase.
  const auto phases = m.by_phase();
  ASSERT_TRUE(phases.count("ba/*/coin/first"));
  EXPECT_EQ(phases.at("ba/*/coin/first").messages, 2u);
  EXPECT_EQ(phases.at("ba/*/coin/first").correct_words, 7u);
}

TEST(Metrics, RecordDecideFeedsDurationAndRoundsHistogram) {
  Metrics m;
  m.record_decide(/*round=*/3, /*depth=*/9);
  m.record_decide(/*round=*/3, /*depth=*/4);
  m.record_decide(/*round=*/5, /*depth=*/2);
  EXPECT_EQ(m.duration(), 9u);
  EXPECT_EQ(m.decide_rounds().total(), 3u);
  EXPECT_EQ(m.decide_rounds().count(3), 2u);
  EXPECT_EQ(m.decide_rounds().count(5), 1u);
}

TEST(Metrics, DeadLettersAlwaysAccounted) {
  Metrics m;  // detail off: dead letters must be counted regardless
  m.record_dead_letter(5);
  m.record_dead_letter(2);
  EXPECT_EQ(m.dead_letters(), 2u);
  EXPECT_EQ(m.dead_letter_words(), 7u);
}

TEST(Metrics, JsonAndPrometheusExportsAreDeterministic) {
  auto build = [] {
    Metrics m;
    m.enable_detail();
    Message a = msg("ba/1/coin/first", 3);
    a.causal_depth = 2;
    m.record_send(a, true);
    m.record_delivery(a, 6);
    m.record_send(msg("ba/1/a1/init", 2), true);
    m.record_decide(1, 4);
    m.record_dead_letter(3);
    return m;
  };
  std::ostringstream ja, jb, pa, pb;
  build().to_json(ja);
  build().to_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_NE(ja.str().find("\"correct_words\""), std::string::npos);
  EXPECT_NE(ja.str().find("\"dead_letters\""), std::string::npos);
  build().to_prometheus(pa);
  build().to_prometheus(pb);
  EXPECT_EQ(pa.str(), pb.str());
  EXPECT_NE(pa.str().find("coincidence_correct_words"), std::string::npos);
}

TEST(Metrics, ResetClearsTelemetryState) {
  Metrics m;
  m.enable_detail();
  Message a = msg("x/1/echo", 4);
  m.record_send(a, true);
  m.record_delivery(a, 3);
  m.record_decide(2, 7);
  m.record_dead_letter(1);
  m.reset();
  EXPECT_TRUE(m.by_tag().empty());
  EXPECT_TRUE(m.words_by_phase().empty());
  EXPECT_EQ(m.decide_rounds().total(), 0u);
  EXPECT_EQ(m.dead_letters(), 0u);
  EXPECT_EQ(m.dead_letter_words(), 0u);
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m;
  m.record_send(msg("a/b", 4), true);
  m.record_delivery();
  m.record_decision_depth(7);
  m.reset();
  EXPECT_EQ(m.correct_words(), 0u);
  EXPECT_EQ(m.total_words(), 0u);
  EXPECT_EQ(m.messages_sent(), 0u);
  EXPECT_EQ(m.deliveries(), 0u);
  EXPECT_EQ(m.duration(), 0u);
  EXPECT_TRUE(m.words_by_tag().empty());
}

}  // namespace
}  // namespace coincidence::sim
