// Chaos orchestration plane (sim/chaos.h) unit tests: the schedule DSL
// round-trips, the event cursor fires in deterministic order, the
// simulation executes partitions / churn waves / storms exactly as the
// spec promises, and the InvariantChecker flags every catalog entry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/errors.h"
#include "sim/chaos.h"
#include "sim/invariants.h"
#include "sim/simulation.h"

namespace coincidence::sim {
namespace {

// ------------------------------------------------------------ spec DSL --

TEST(ChaosDsl, SpecRoundTripsExactly) {
  ChaosSchedule s;
  s.phases.push_back(ChaosPhase::partition(64, 192, 2));
  s.phases.push_back(ChaosPhase::churn(0, 512, 1, 64, 192));
  s.phases.push_back(ChaosPhase::storm(64, 256, 0.3, 2));
  const std::string spec =
      "partition@64+192:boundary=2,mode=hold;"
      "churn@0+512:victims=1,down=64,every=192;"
      "storm@64+256:p=0.3,copies=2";
  EXPECT_EQ(s.spec(), spec);

  ChaosSchedule back = ChaosSchedule::parse(s.spec());
  ASSERT_EQ(back.phases.size(), 3u);
  EXPECT_EQ(back.spec(), spec);
  EXPECT_EQ(back.phases[0].kind, ChaosPhase::Kind::kPartition);
  EXPECT_EQ(back.phases[0].boundary, 2u);
  EXPECT_EQ(back.phases[0].partition_mode, ChaosPhase::PartitionMode::kHold);
  EXPECT_EQ(back.phases[0].end(), 256u);
  EXPECT_EQ(back.phases[1].churn_victims, 1u);
  EXPECT_EQ(back.phases[1].churn_down, 64u);
  EXPECT_EQ(back.phases[1].churn_every, 192u);
  EXPECT_DOUBLE_EQ(back.phases[2].storm_p, 0.3);
  EXPECT_EQ(back.phases[2].storm_copies, 2u);
}

TEST(ChaosDsl, ParseAcceptsParamSubsetsWithDefaults) {
  ChaosSchedule s = ChaosSchedule::parse("churn@5+10");
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].kind, ChaosPhase::Kind::kChurn);
  EXPECT_EQ(s.phases[0].start, 5u);
  EXPECT_EQ(s.phases[0].duration, 10u);
  EXPECT_EQ(s.phases[0].churn_victims, 0u);  // default: no-op wave

  s = ChaosSchedule::parse("partition@0+8:mode=drop");
  EXPECT_EQ(s.phases[0].partition_mode, ChaosPhase::PartitionMode::kDrop);
  EXPECT_EQ(s.phases[0].boundary, 0u);
}

TEST(ChaosDsl, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(ChaosSchedule::parse("bogus@0+1"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("partition0+1"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("partition@0:boundary=2"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("partition@x+1"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("partition@0+1:mode=maybe"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("storm@0+1:p=1.5"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("storm@0+1:p=abc"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("churn@0+1:victims=x"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("storm@0+1:q=1"), ConfigError);
  EXPECT_THROW(ChaosSchedule::parse("storm@0+1:copies"), ConfigError);
}

TEST(ChaosDsl, PresetsScaleAndRoundTrip) {
  for (const std::string& name : ChaosSchedule::preset_names()) {
    ChaosSchedule s = ChaosSchedule::preset(name, 32);
    // "adaptive" is deliberately empty (the adversary is the hostility).
    if (name == "adaptive") {
      EXPECT_TRUE(s.empty()) << name;
    } else {
      EXPECT_FALSE(s.empty()) << name;
    }
    ChaosSchedule back = ChaosSchedule::parse(s.spec());
    EXPECT_EQ(back.spec(), s.spec()) << name;
  }
  EXPECT_THROW(ChaosSchedule::preset("no-such-preset", 32), ConfigError);
  EXPECT_THROW(ChaosSchedule::preset("churn", 0), PreconditionError);

  EXPECT_EQ(ChaosSchedule::preset("churn", 8).max_churn_victims(), 1u);
  EXPECT_EQ(ChaosSchedule::preset("combined", 8).max_churn_victims(), 1u);
  EXPECT_EQ(ChaosSchedule::preset("storm", 8).max_churn_victims(), 0u);
  // copies=0 is clamped to 1: "at most zero extra copies" is a typo, not
  // a schedule.
  EXPECT_EQ(ChaosPhase::storm(0, 1, 0.5, 0).storm_copies, 1u);
}

// ---------------------------------------------------------- ChaosState --

TEST(ChaosState, EventsFireInDeterministicOrder) {
  // Waves at phase start then every `every` while the phase lasts:
  // 10, 40, 70, 100 (end() = 110 is exclusive).
  ChaosSchedule s = ChaosSchedule::parse("churn@10+100:victims=2,down=5,every=30");
  ChaosState state(s);
  EXPECT_EQ(state.next_event_at(), std::optional<std::uint64_t>(10));
  EXPECT_FALSE(state.pop_due(9).has_value());

  std::vector<ChaosEvent> fired;
  while (auto ev = state.pop_due(200)) fired.push_back(*ev);
  ASSERT_EQ(fired.size(), 6u);
  EXPECT_EQ(fired[0].kind, ChaosEvent::Kind::kPhaseBegin);
  EXPECT_EQ(fired[0].at, 10u);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)].kind,
              ChaosEvent::Kind::kChurnWave);
    EXPECT_EQ(fired[static_cast<std::size_t>(i)].at,
              10u + 30u * static_cast<std::uint64_t>(i - 1));
  }
  EXPECT_EQ(fired[5].kind, ChaosEvent::Kind::kPhaseEnd);
  EXPECT_EQ(fired[5].at, 110u);
  EXPECT_FALSE(state.next_event_at().has_value());
}

TEST(ChaosState, PartitionActivationWindowGatesBlocked) {
  ChaosSchedule s = ChaosSchedule::parse("partition@5+10:boundary=2,mode=hold");
  ChaosState state(s);
  EXPECT_FALSE(state.any_active_partition());
  EXPECT_FALSE(state.blocked(0, 3, nullptr, nullptr));

  ASSERT_TRUE(state.pop_due(5).has_value());  // begin
  EXPECT_TRUE(state.any_active_partition());
  ChaosPhase::PartitionMode mode = ChaosPhase::PartitionMode::kDrop;
  std::size_t phase = 99;
  EXPECT_TRUE(state.blocked(0, 3, &mode, &phase));
  EXPECT_EQ(mode, ChaosPhase::PartitionMode::kHold);
  EXPECT_EQ(phase, 0u);
  EXPECT_TRUE(state.blocked(3, 0, nullptr, nullptr));  // symmetric
  EXPECT_FALSE(state.blocked(0, 1, nullptr, nullptr));  // same group
  EXPECT_FALSE(state.blocked(2, 3, nullptr, nullptr));
  EXPECT_EQ(state.current_phase(), 0u);

  ASSERT_TRUE(state.pop_due(15).has_value());  // end: heals
  EXPECT_FALSE(state.any_active_partition());
  EXPECT_FALSE(state.blocked(0, 3, nullptr, nullptr));
}

// ------------------------------------------------- simulation execution --

/// Everyone broadcasts one "v" message at start and counts receipts.
class Counter final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.broadcast("v", bytes_of("v"), 1); }
  void on_message(Context&, const Message& msg) override {
    if (msg.tag == "v") ++received;
  }
  int received = 0;
};

std::unique_ptr<Simulation> make_counters(std::size_t n, std::size_t f,
                                          const std::string& chaos_spec,
                                          std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  cfg.chaos = ChaosSchedule::parse(chaos_spec);
  auto sim = std::make_unique<Simulation>(cfg);
  for (std::size_t i = 0; i < n; ++i)
    sim->add_process(std::make_unique<Counter>());
  return sim;
}

int received_of(Simulation& sim, ProcessId id) {
  return dynamic_cast<Counter&>(sim.process(id)).received;
}

TEST(ChaosSim, PartitionHoldBuffersUntilIdleAdvanceHeals) {
  // Partition {0,1} | {2,3} from tick 0, healing at tick 1000 — far past
  // natural quiescence (12 broadcasts), so only the idle advance can
  // reach the heal event. The 8 cross-partition messages must be held,
  // then released and delivered: chaos delays, it never loses.
  auto sim_ptr = make_counters(4, 0, "partition@0+1000:boundary=2,mode=hold");
  Simulation& sim = *sim_ptr;
  sim.start();
  sim.run();
  // Broadcast includes self-delivery: 4 receipts each once healed.
  for (ProcessId i = 0; i < 4; ++i) EXPECT_EQ(received_of(sim, i), 4) << i;
  EXPECT_EQ(sim.metrics().partition_held(), 8u);
  EXPECT_EQ(sim.metrics().partition_released(), 8u);
  EXPECT_EQ(sim.metrics().partition_dropped(), 0u);
  EXPECT_EQ(sim.chaos_held(), 0u);  // partitions eventually heal
  EXPECT_GE(sim.deliveries(), 12u);
}

TEST(ChaosSim, PartitionDropLosesCrossTrafficForGood) {
  auto sim_ptr = make_counters(4, 0, "partition@0+1000:boundary=2,mode=drop");
  Simulation& sim = *sim_ptr;
  sim.start();
  sim.run();
  // Only the same-side traffic (self + one peer) arrives.
  for (ProcessId i = 0; i < 4; ++i) EXPECT_EQ(received_of(sim, i), 2) << i;
  EXPECT_EQ(sim.metrics().partition_dropped(), 8u);
  EXPECT_EQ(sim.metrics().partition_held(), 0u);
  EXPECT_EQ(sim.chaos_held(), 0u);  // dropped, not stranded
}

TEST(ChaosSim, StormDuplicatesEverySendAtPOne) {
  // p=1, copies=1: deterministically exactly one extra network copy per
  // send. Self-deliveries ride the self-queue, not the link, so only the
  // 12 cross-process broadcasts burst: 4 own receipts + 3 peers x 2.
  auto sim_ptr = make_counters(4, 0, "storm@0+100000:p=1,copies=1");
  Simulation& sim = *sim_ptr;
  sim.start();
  sim.run();
  for (ProcessId i = 0; i < 4; ++i) EXPECT_EQ(received_of(sim, i), 7) << i;
  EXPECT_EQ(sim.metrics().storm_copies(), 12u);
}

TEST(ChaosSim, ChurnWavesRecycleTheSameVictimWithinBudget) {
  // Three waves (ticks 0, 40, 80) cycling one victim with f=1: the first
  // crash spends the budget, later waves re-corrupt the SAME process for
  // free. The victim set is the highest free id (3).
  auto sim_ptr = make_counters(4, 1, "churn@0+100:victims=1,down=10,every=40");
  Simulation& sim = *sim_ptr;
  sim.start();
  sim.run();
  EXPECT_EQ(sim.metrics().churn_crashes(), 3u);
  EXPECT_EQ(sim.corrupted_count(), 1u);  // within f despite three crashes
  EXPECT_TRUE(sim.is_corrupted(3));
  EXPECT_TRUE(sim.has_recovered(3));
  EXPECT_FALSE(sim.is_down(3));
  // The wave fired before on_start, so the victim never broadcast; the
  // three correct processes heard themselves and the other two peers.
  for (ProcessId i = 0; i < 3; ++i) EXPECT_EQ(received_of(sim, i), 3) << i;
}

TEST(ChaosSim, ChurnWithoutBudgetIsSkippedNotFatal) {
  // f=0: the wave finds no budget and must skip, not throw.
  auto sim_ptr = make_counters(4, 0, "churn@0+50:victims=1,down=10,every=0");
  Simulation& sim = *sim_ptr;
  sim.start();
  sim.run();
  EXPECT_EQ(sim.metrics().churn_crashes(), 0u);
  EXPECT_EQ(sim.corrupted_count(), 0u);
  for (ProcessId i = 0; i < 4; ++i) EXPECT_EQ(received_of(sim, i), 4) << i;
}

TEST(ChaosSim, CombinedScheduleIsSeedDeterministic) {
  const std::string spec =
      "storm@0+40:p=0.5,copies=2;"
      "partition@8+30:boundary=2,mode=hold;"
      "churn@20+60:victims=1,down=8,every=0";
  auto run = [&spec](std::uint64_t seed) {
    auto sim = make_counters(4, 1, spec, seed);
    sim->start();
    sim->run();
    return sim;
  };
  auto a = run(9);
  auto b = run(9);
  auto c = run(10);
  EXPECT_EQ(a->metrics().storm_copies(), b->metrics().storm_copies());
  EXPECT_EQ(a->metrics().partition_held(), b->metrics().partition_held());
  EXPECT_EQ(a->metrics().churn_crashes(), b->metrics().churn_crashes());
  EXPECT_EQ(a->metrics().correct_words(), b->metrics().correct_words());
  EXPECT_EQ(a->deliveries(), b->deliveries());
  for (ProcessId i = 0; i < 4; ++i)
    EXPECT_EQ(received_of(*a, i), received_of(*b, i)) << i;
  // Different seed: the storm draws a different burst pattern. (The
  // partition/churn phases are schedule-driven and stay identical.)
  EXPECT_EQ(a->metrics().partition_held(), c->metrics().partition_held());
  EXPECT_EQ(a->metrics().churn_crashes(), c->metrics().churn_crashes());
}

// ------------------------------------------------- InvariantChecker ------

InvariantChecker::Config checker_config() {
  InvariantChecker::Config cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.agreement_scopes = {"ba"};
  return cfg;
}

DecideEvent decide(ProcessId who, const char* scope, int value,
                   bool correct = true) {
  DecideEvent ev;
  ev.who = who;
  ev.scope = Tag(scope);
  ev.value = value;
  ev.correct = correct;
  return ev;
}

Message word_msg(ProcessId from, std::size_t words) {
  Message m;
  m.from = from;
  m.to = (from + 1) % 4;
  m.tag = Tag("v");
  m.words = words;
  return m;
}

TEST(InvariantCheck, CleanRunPasses) {
  InvariantChecker checker(checker_config());
  checker.on_send(word_msg(0, 3), true);
  checker.on_send(word_msg(1, 2), true);
  for (ProcessId p = 0; p < 4; ++p) checker.on_decide(decide(p, "ba", 1));
  checker.on_decide(decide(0, "ba", 1));  // re-report of the same value: fine
  checker.on_corrupt(3, FaultPlan::silent());
  checker.finalize(/*metrics_correct_words=*/5, /*held_remaining=*/0,
                   /*corrupted_count=*/1);
  EXPECT_TRUE(checker.ok()) << InvariantChecker::describe(
      checker.violations().front());
}

TEST(InvariantCheck, FlagsAgreementViolation) {
  InvariantChecker checker(checker_config());
  checker.on_decide(decide(0, "ba", 1));
  checker.on_decide(decide(1, "ba", 0));
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "agreement");
}

TEST(InvariantCheck, FlagsIntegrityDivergenceAcrossRecovery) {
  InvariantChecker checker(checker_config());
  checker.on_decide(decide(2, "ba", 1));
  checker.on_recover(2);
  checker.on_decide(decide(2, "ba", 0));
  // One decide flips both integrity (same process, new value) and
  // agreement would NOT fire (first_decision was 1, process 2 is also the
  // scope's first decider... it disagrees with itself only).
  bool integrity = false;
  for (const auto& v : checker.violations())
    if (v.invariant == "integrity") {
      integrity = true;
      EXPECT_NE(v.detail.find("across a recovery"), std::string::npos)
          << v.detail;
    }
  EXPECT_TRUE(integrity);
}

TEST(InvariantCheck, FlagsValidityAgainstUnanimousInput) {
  InvariantChecker::Config cfg = checker_config();
  cfg.expected_decision = 1;
  InvariantChecker checker(cfg);
  checker.on_decide(decide(0, "ba", 0));
  ASSERT_FALSE(checker.ok());
  bool validity = false;
  for (const auto& v : checker.violations())
    if (v.invariant == "validity") validity = true;
  EXPECT_TRUE(validity);
}

TEST(InvariantCheck, FlagsBudgetOverrunOnlineAndAtFinalize) {
  InvariantChecker checker(checker_config());  // f = 1
  checker.on_corrupt(3, FaultPlan::silent());
  EXPECT_TRUE(checker.ok());
  checker.on_corrupt(2, FaultPlan::crash());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "budget");

  InvariantChecker late(checker_config());
  late.finalize(0, 0, /*corrupted_count=*/2);
  ASSERT_EQ(late.violations().size(), 1u);
  EXPECT_EQ(late.violations()[0].invariant, "budget");
}

TEST(InvariantCheck, FinalizeFlagsUnhealedPartitionAndWordMismatch) {
  InvariantChecker checker(checker_config());
  checker.on_send(word_msg(0, 3), true);
  checker.on_send(word_msg(1, 4), false);  // Byzantine: not §2 words
  Message repair = word_msg(2, 5);
  repair.retransmit = true;
  checker.on_send(repair, true);  // repair overhead: not §2 words either
  checker.finalize(/*metrics_correct_words=*/3, /*held_remaining=*/2,
                   /*corrupted_count=*/1);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "heal");

  InvariantChecker bad(checker_config());
  bad.on_send(word_msg(0, 3), true);
  bad.finalize(/*metrics_correct_words=*/4, 0, 0);
  ASSERT_EQ(bad.violations().size(), 1u);
  EXPECT_EQ(bad.violations()[0].invariant, "word-count");
}

TEST(InvariantCheck, FlagsPerMessageWordSanity) {
  InvariantChecker::Config cfg = checker_config();
  cfg.max_message_words = 16;
  InvariantChecker checker(cfg);
  checker.on_send(word_msg(0, 0), true);   // zero words: malformed
  checker.on_send(word_msg(1, 17), true);  // over the sanity bound
  checker.on_send(word_msg(2, 16), true);  // at the bound: legal
  ASSERT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[0].invariant, "word-count");
  EXPECT_EQ(checker.violations()[1].invariant, "word-count");
}

TEST(InvariantCheck, LabelsViolationWithActiveChaosPhase) {
  InvariantChecker checker(checker_config());
  checker.on_decide(decide(0, "ba", 1));
  checker.on_chaos_phase(2, "partition", /*begin=*/true, /*at=*/64);
  checker.on_decide(decide(1, "ba", 0));
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].chaos_phase, 2u);
  const std::string line = InvariantChecker::describe(checker.violations()[0]);
  EXPECT_NE(line.find("invariant=agreement"), std::string::npos) << line;
  EXPECT_NE(line.find("phase=2"), std::string::npos) << line;

  // Without a phase, describe prints the "-" placeholder.
  InvariantChecker quiet(checker_config());
  quiet.on_decide(decide(0, "ba", 1));
  quiet.on_decide(decide(1, "ba", 0));
  EXPECT_NE(InvariantChecker::describe(quiet.violations()[0]).find("phase=-"),
            std::string::npos);
}

TEST(InvariantCheck, IgnoresOutOfScopeAndByzantineDecides) {
  InvariantChecker checker(checker_config());  // scopes = {"ba"}
  // Weak-coin sub-protocols may disagree: out of scope, no violation.
  checker.on_decide(decide(0, "ba/3/coin", 1));
  checker.on_decide(decide(1, "ba/3/coin", 0));
  // Byzantine "decisions" carry no promise.
  checker.on_decide(decide(2, "ba", 1, /*correct=*/false));
  checker.on_decide(decide(3, "ba", 0, /*correct=*/false));
  checker.finalize(0, 0, 0);
  EXPECT_TRUE(checker.ok());
}

}  // namespace
}  // namespace coincidence::sim
