// TagTable thread-safety (ISSUE 4 satellite): the parallel experiment
// driver interns tags from worker threads while other workers resolve
// them. intern() takes a shared lock on the lookup hit path and an
// exclusive lock (with re-check) to insert; str() is lock-free behind
// the size_ acquire. This test hammers both paths from many threads —
// run it under -fsanitize=thread (COINCIDENCE_TSAN=ON, exercised by the
// CI tsan job) to catch lock-discipline regressions.
#include "sim/tag_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace coincidence::sim {
namespace {

TEST(TagTableThreads, ConcurrentInternAgreesOnIds) {
  TagTable& table = TagTable::instance();
  constexpr int kThreads = 8;
  constexpr int kTags = 64;
  constexpr int kRounds = 200;

  // Unique prefix so reruns in one process don't collide with other
  // tests' tags (the table is a process-wide singleton).
  const std::string prefix = "tsan-test/agree/";

  std::vector<std::vector<TagId>> ids(kThreads,
                                      std::vector<TagId>(kTags, TagId{0}));
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {}  // start together
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kTags; ++i) {
          // Every thread interns the same kTags names, over and over:
          // the first round races inserts, later rounds race the
          // shared-lock lookup path against stragglers' inserts.
          const TagId id = table.intern(prefix + std::to_string(i));
          if (r == 0) {
            ids[t][i] = id;
          } else {
            ASSERT_EQ(id, ids[t][i]);
          }
          // Resolve through the lock-free read path immediately.
          ASSERT_EQ(table.str(id), prefix + std::to_string(i));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // All threads resolved every name to one id.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
}

TEST(TagTableThreads, DisjointInternsDontCorruptEachOther) {
  TagTable& table = TagTable::instance();
  constexpr int kThreads = 8;
  constexpr int kTagsPerThread = 256;
  const std::string prefix = "tsan-test/disjoint/";

  std::vector<std::vector<TagId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(kTagsPerThread);
      for (int i = 0; i < kTagsPerThread; ++i) {
        ids[t].push_back(table.intern(prefix + std::to_string(t) + "/" +
                                      std::to_string(i)));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every id resolves back to exactly the string its thread interned,
  // and ids never collide across threads (distinct strings).
  std::vector<TagId> all;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kTagsPerThread; ++i) {
      EXPECT_EQ(table.str(ids[t][i]),
                prefix + std::to_string(t) + "/" + std::to_string(i));
      all.push_back(ids[t][i]);
    }
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

}  // namespace
}  // namespace coincidence::sim
