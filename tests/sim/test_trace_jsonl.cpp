// Structured JSONL trace (ISSUE 4 tentpole + satellite): byte-identical
// replays, the filter contract (tag_filter narrows message traffic ONLY
// — fault and decision events always recorded), delivery provenance for
// link duplicates/replays, and vector-clock sanity.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "sim/trace.h"

namespace coincidence {
namespace {

using core::Protocol;
using core::RunInstruments;
using core::RunOptions;
using core::RunReport;
using sim::TraceOptions;
using sim::TraceRecorder;
using Rec = sim::TraceRecorder::Rec;
using Prov = sim::TraceRecorder::Prov;

struct TracedRun {
  RunReport report;
  std::shared_ptr<TraceRecorder> trace;
};

TracedRun run_traced(const RunOptions& options, TraceOptions topts) {
  TracedRun out;
  out.trace = std::make_shared<TraceRecorder>(std::move(topts));
  RunInstruments instruments;
  instruments.observers.push_back(out.trace);
  out.report = core::run_agreement(options, instruments);
  return out;
}

RunOptions small_bracha() {
  RunOptions options;
  options.protocol = Protocol::kBracha;
  options.n = 4;
  options.seed = 21;
  options.inputs.assign(4, ba::kOne);
  return options;
}

TEST(TraceJsonl, ByteIdenticalAcrossReplays) {
  TraceOptions topts;
  topts.structured = true;
  auto a = run_traced(small_bracha(), topts);
  auto b = run_traced(small_bracha(), topts);
  ASSERT_TRUE(a.report.all_correct_decided);

  std::ostringstream ja, jb;
  a.trace->dump_jsonl(ja);
  b.trace->dump_jsonl(jb);
  ASSERT_FALSE(ja.str().empty());
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_FALSE(a.trace->records().empty());
}

TEST(TraceJsonl, StructuredModeDoesNotDisturbLegacyDump) {
  TraceOptions structured;
  structured.structured = true;
  auto with = run_traced(small_bracha(), structured);
  auto without = run_traced(small_bracha(), TraceOptions{});

  std::ostringstream da, db;
  with.trace->dump(da);
  without.trace->dump(db);
  EXPECT_EQ(da.str(), db.str());  // golden-fingerprint format untouched
  EXPECT_TRUE(without.trace->records().empty());
}

// Satellite: a tag filter that matches no message traffic must still
// record corruptions, recoveries, decides and rounds — a filtered trace
// that silently dropped fault events would make fault accounting lie.
TEST(TraceJsonl, TagFilterKeepsFaultAndDecisionEvents) {
  RunOptions options;
  options.protocol = Protocol::kBracha;
  options.n = 5;
  options.seed = 33;
  options.junk = 1;
  options.inputs.assign(5, ba::kOne);

  TraceOptions topts;
  topts.structured = true;
  topts.tag_filter = "no-such-tag-anywhere";
  auto run = run_traced(options, topts);
  ASSERT_TRUE(run.report.all_correct_decided);

  std::map<Rec::Kind, std::size_t> kinds;
  for (const Rec& r : run.trace->records()) ++kinds[r.kind];
  EXPECT_EQ(kinds.count(Rec::Kind::kSend), 0u);
  EXPECT_EQ(kinds.count(Rec::Kind::kDeliver), 0u);
  ASSERT_GE(kinds[Rec::Kind::kCorrupt], 1u);  // the junk corruption
  EXPECT_GE(kinds[Rec::Kind::kDecide], 4u);   // every correct process
  EXPECT_GE(kinds[Rec::Kind::kRound], 1u);
  // The legacy compact stream obeys the same contract.
  bool legacy_corrupt = false;
  for (const auto& e : run.trace->events())
    legacy_corrupt |= e.kind == TraceRecorder::Event::Kind::kCorrupt;
  EXPECT_TRUE(legacy_corrupt);
}

TEST(TraceJsonl, DeliveryProvenanceMarksDuplicatesAndReplays) {
  RunOptions options = small_bracha();
  options.seed = 9;
  // Duplicating + replaying (never dropping) links keep liveness while
  // forcing network-created copies through the provenance map.
  options.network.default_link.dup_p = 0.3;
  options.network.default_link.max_duplicates = 2;
  options.network.default_link.replay_p = 0.2;
  options.network.default_link.replay_window = 8;

  TraceOptions topts;
  topts.structured = true;
  auto run = run_traced(options, topts);
  ASSERT_TRUE(run.report.all_correct_decided);
  ASSERT_GT(run.report.link_duplicates, 0u);
  ASSERT_GT(run.report.link_replays, 0u);

  std::size_t dup_events = 0, replay_events = 0;
  std::size_t dup_delivers = 0, replay_delivers = 0, fresh_delivers = 0;
  for (const Rec& r : run.trace->records()) {
    switch (r.kind) {
      case Rec::Kind::kDuplicate: ++dup_events; break;
      case Rec::Kind::kReplay: ++replay_events; break;
      case Rec::Kind::kDeliver:
        if (r.prov == Prov::kDuplicate) ++dup_delivers;
        if (r.prov == Prov::kReplay) ++replay_delivers;
        if (r.prov == Prov::kFresh) ++fresh_delivers;
        // Every network copy resolves to its original send's clock.
        EXPECT_FALSE(r.vc.empty());
        break;
      default: break;
    }
  }
  // One kDuplicate/kReplay record per link event, matching Metrics.
  EXPECT_EQ(dup_events, run.report.link_duplicates);
  EXPECT_EQ(replay_events, run.report.link_replays);
  // Copies actually reached receivers and were attributed as such.
  EXPECT_GT(dup_delivers, 0u);
  EXPECT_GT(replay_delivers, 0u);
  EXPECT_GT(fresh_delivers, 0u);
}

TEST(TraceJsonl, VectorClocksAreMonotoneAndContainSendSnapshots) {
  TraceOptions topts;
  topts.structured = true;
  auto run = run_traced(small_bracha(), topts);
  ASSERT_TRUE(run.report.all_correct_decided);

  auto contains = [](const std::vector<std::uint64_t>& big,
                     const std::vector<std::uint64_t>& small) {
    for (std::size_t i = 0; i < small.size(); ++i) {
      const std::uint64_t b = i < big.size() ? big[i] : 0;
      if (b < small[i]) return false;
    }
    return true;
  };

  // send_seq -> the clock stamped on the original send.
  std::map<std::uint64_t, std::vector<std::uint64_t>> send_vc;
  std::map<sim::ProcessId, std::vector<std::uint64_t>> last_deliver_vc;
  std::size_t delivers = 0;
  for (const Rec& r : run.trace->records()) {
    if (r.kind == Rec::Kind::kSend) {
      send_vc[r.send_seq] = r.vc;
    } else if (r.kind == Rec::Kind::kDeliver) {
      ++delivers;
      auto it = send_vc.find(r.send_seq);
      ASSERT_NE(it, send_vc.end()) << "deliver without a recorded send";
      // The receiver's clock merged the send snapshot, then ticked.
      EXPECT_TRUE(contains(r.vc, it->second));
      auto& prev = last_deliver_vc[r.to];
      EXPECT_TRUE(contains(r.vc, prev))
          << "receiver clock went backwards at process " << r.to;
      prev = r.vc;
    }
  }
  EXPECT_GT(delivers, 0u);
}

}  // namespace
}  // namespace coincidence
