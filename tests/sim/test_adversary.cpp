#include "sim/adversary.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/ser.h"
#include "sim/simulation.h"

namespace coincidence::sim {
namespace {

/// Records the order in which its messages arrive.
class Recorder final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    // Send k tagged messages to process 1 in a known order.
    for (int k = 0; k < 8; ++k)
      ctx.send(1, "m" + std::to_string(k), {}, 1);
  }
  void on_message(Context&, const Message& msg) override {
    order.push_back(msg.tag.str());
  }
  std::vector<std::string> order;
};

TEST(Adversary, FifoDeliversInSendOrder) {
  SimConfig cfg;
  cfg.n = 2;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Recorder>());
  sim.add_process(std::make_unique<Recorder>());
  sim.set_adversary(std::make_unique<FifoAdversary>());
  sim.start();
  sim.run();
  auto& r = dynamic_cast<Recorder&>(sim.process(1));
  ASSERT_EQ(r.order.size(), 8u);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(r.order[k], "m" + std::to_string(k));
}

TEST(Adversary, RandomReordersButDeliversAll) {
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 5;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Recorder>());
  sim.add_process(std::make_unique<Recorder>());
  sim.set_adversary(std::make_unique<RandomAdversary>());
  sim.start();
  sim.run();
  auto& r = dynamic_cast<Recorder&>(sim.process(1));
  EXPECT_EQ(r.order.size(), 8u);
  std::vector<std::string> sorted = r.order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> expect;
  for (int k = 0; k < 8; ++k) expect.push_back("m" + std::to_string(k));
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

/// Two senders (1 and 2) each send a stream to process 0.
class TwoStreams final : public Process {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 1 || ctx.self() == 2)
      for (int k = 0; k < 10; ++k)
        ctx.send(0, "s" + std::to_string(ctx.self()), {}, 1);
  }
  void on_message(Context&, const Message& msg) override {
    arrivals.push_back(msg.from);
  }
  std::vector<ProcessId> arrivals;
};

TEST(Adversary, DelaySendersStarvesVictimUntilFairnessBound) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 2;
  cfg.fairness_bound = 1000;  // effectively no forced delivery here
  Simulation sim(cfg);
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<TwoStreams>());
  sim.set_adversary(std::make_unique<DelaySendersAdversary>(
      std::vector<ProcessId>{1}));
  sim.start();
  sim.run();
  auto& arrivals = dynamic_cast<TwoStreams&>(sim.process(0)).arrivals;
  ASSERT_EQ(arrivals.size(), 20u);
  // All of sender 2's messages must arrive before any of sender 1's.
  for (int k = 0; k < 10; ++k) EXPECT_EQ(arrivals[k], 2u) << k;
  for (int k = 10; k < 20; ++k) EXPECT_EQ(arrivals[k], 1u) << k;
}

TEST(Adversary, FairnessBoundForcesEventualDelivery) {
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 2;
  cfg.fairness_bound = 4;  // victim messages must break through quickly
  Simulation sim(cfg);
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<TwoStreams>());
  sim.set_adversary(std::make_unique<DelaySendersAdversary>(
      std::vector<ProcessId>{1}));
  sim.start();
  sim.run();
  auto& arrivals = dynamic_cast<TwoStreams&>(sim.process(0)).arrivals;
  ASSERT_EQ(arrivals.size(), 20u);
  // With a tight bound the victim's messages interleave early.
  bool victim_in_first_half = false;
  for (int k = 0; k < 10; ++k)
    if (arrivals[k] == 1u) victim_in_first_half = true;
  EXPECT_TRUE(victim_in_first_half);
}

TEST(Adversary, SplitDelaysCrossPartitionTraffic) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.seed = 7;
  cfg.fairness_bound = 1000;
  Simulation sim(cfg);

  class CrossSender final : public Process {
   public:
    void on_start(Context& ctx) override {
      for (ProcessId to = 0; to < ctx.n(); ++to)
        if (to != ctx.self()) ctx.send(to, "x", {}, 1);
    }
    void on_message(Context&, const Message& msg) override {
      arrivals.push_back(msg.from);
    }
    std::vector<ProcessId> arrivals;
  };
  for (int i = 0; i < 4; ++i) sim.add_process(std::make_unique<CrossSender>());
  sim.set_adversary(std::make_unique<SplitAdversary>(2));
  sim.start();
  sim.run();
  // First arrival at process 0 must be from its own partition {0,1}.
  auto& a0 = dynamic_cast<CrossSender&>(sim.process(0)).arrivals;
  ASSERT_FALSE(a0.empty());
  EXPECT_LT(a0.front(), 2u);
  EXPECT_EQ(a0.size(), 3u);  // everything still delivered eventually
}

TEST(Adversary, StaticCorruptionFiresAtStart) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.f = 2;
  Simulation sim(cfg);

  class B final : public Process {
   public:
    void on_start(Context& ctx) override { ctx.broadcast("b", {}, 1); }
    void on_message(Context&, const Message&) override { ++got; }
    int got = 0;
  };
  for (int i = 0; i < 4; ++i) sim.add_process(std::make_unique<B>());
  sim.set_adversary(std::make_unique<StaticCorruptionAdversary>(
      std::vector<ProcessId>{0, 1}, FaultPlan::silent()));
  sim.start();
  sim.run();
  EXPECT_TRUE(sim.is_corrupted(0));
  EXPECT_TRUE(sim.is_corrupted(1));
  EXPECT_EQ(dynamic_cast<B&>(sim.process(3)).got, 2);  // only 2 and 3 spoke
}

TEST(Adversary, CorruptionRequestsBeyondBudgetIgnored) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.f = 1;  // budget below the adversary's wish list
  Simulation sim(cfg);

  class Noop final : public Process {
   public:
    void on_start(Context& ctx) override { ctx.broadcast("b", {}, 1); }
    void on_message(Context&, const Message&) override {}
  };
  for (int i = 0; i < 4; ++i) sim.add_process(std::make_unique<Noop>());
  sim.set_adversary(std::make_unique<StaticCorruptionAdversary>(
      std::vector<ProcessId>{0, 1, 2}, FaultPlan::silent()));
  sim.start();
  sim.run();
  EXPECT_EQ(sim.corrupted_count(), 1u);
}

TEST(Adversary, ContentInvisibleByDefault) {
  // A CoinBiasAdversary without allow_content_visibility never sees
  // content, so it starves nobody and behaves like RandomAdversary.
  SimConfig cfg;
  cfg.n = 3;
  cfg.seed = 4;
  Simulation sim(cfg);

  class CoinLike final : public Process {
   public:
    void on_start(Context& ctx) override {
      Writer w;
      Bytes value(32, static_cast<std::uint8_t>(ctx.self()));
      w.blob(value).blob(bytes_of("proof"));
      ctx.broadcast("coin/first", w.take(), 2);
    }
    void on_message(Context&, const Message&) override { ++got; }
    int got = 0;
  };
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<CoinLike>());
  auto adversary = std::make_unique<CoinBiasAdversary>("first", 0);
  sim.set_adversary(std::move(adversary));
  sim.start();
  sim.run();
  EXPECT_EQ(sim.corrupted_count(), 0u);  // never learned anything to act on
  for (ProcessId i = 0; i < 3; ++i)
    EXPECT_EQ(dynamic_cast<CoinLike&>(sim.process(i)).got, 3);
}

TEST(Adversary, ContentAwareModeEnablesBiasAttack) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.f = 3;
  cfg.seed = 4;
  cfg.allow_content_visibility = true;  // ILLEGAL mode
  Simulation sim(cfg);

  class CoinLike final : public Process {
   public:
    void on_start(Context& ctx) override {
      Writer w;
      Bytes value(32, 0);
      value.back() = static_cast<std::uint8_t>(ctx.self() & 1);  // LSB = id parity
      w.blob(value).blob(bytes_of("proof"));
      ctx.broadcast("coin/first", w.take(), 2);
    }
    void on_message(Context&, const Message&) override {}
  };
  for (int i = 0; i < 4; ++i) sim.add_process(std::make_unique<CoinLike>());
  sim.set_adversary(std::make_unique<CoinBiasAdversary>("first", 0));
  sim.start();
  sim.run();
  // Processes 1 and 3 hold LSB=1 values: both get corrupted.
  EXPECT_TRUE(sim.is_corrupted(1));
  EXPECT_TRUE(sim.is_corrupted(3));
  EXPECT_FALSE(sim.is_corrupted(0));
  EXPECT_FALSE(sim.is_corrupted(2));
}

}  // namespace
}  // namespace coincidence::sim

namespace coincidence::sim {
namespace {

TEST(Adversary, HeavyTailDelaysAFewMessagesALot) {
  // 40 messages to one receiver: under Pareto weights the arrival order
  // is a fixed permutation (weights persist), everything is delivered,
  // and the spread between first and last arrival of any send batch is
  // larger than FIFO's (which is zero reordering).
  SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 21;
  Simulation sim(cfg);

  class Burst final : public Process {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0)
        for (int k = 0; k < 40; ++k)
          ctx.send(1, "m" + std::to_string(k), {}, 1);
    }
    void on_message(Context&, const Message& msg) override {
      order.push_back(msg.tag.str());
    }
    std::vector<std::string> order;
  };
  sim.add_process(std::make_unique<Burst>());
  sim.add_process(std::make_unique<Burst>());
  sim.set_adversary(std::make_unique<HeavyTailAdversary>(1.3));
  sim.start();
  sim.run();

  auto& r = dynamic_cast<Burst&>(sim.process(1));
  ASSERT_EQ(r.order.size(), 40u);  // everything delivered
  // Not FIFO: some message overtook an earlier one.
  bool reordered = false;
  for (std::size_t i = 1; i < r.order.size(); ++i)
    if (r.order[i] < r.order[i - 1]) reordered = true;
  EXPECT_TRUE(reordered);
}

TEST(Adversary, HeavyTailRejectsBadAlpha) {
  EXPECT_THROW(HeavyTailAdversary{-1.0}, PreconditionError);
  EXPECT_THROW(HeavyTailAdversary{0.0}, PreconditionError);
}

}  // namespace
}  // namespace coincidence::sim
