#include <gtest/gtest.h>

#include "common/errors.h"
#include "sim/simulation.h"

namespace coincidence::sim {
namespace {

/// Everyone broadcasts one "v" message at start and counts receipts.
class Counter final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.broadcast("v", bytes_of("v"), 1); }
  void on_message(Context&, const Message& msg) override {
    if (msg.tag == "v") ++received;
    if (!msg.payload.empty() && msg.payload == bytes_of("v")) ++valid;
  }
  int received = 0;
  int valid = 0;
};

std::unique_ptr<Simulation> make_counters(std::size_t n, std::size_t f,
                                          std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  auto sim = std::make_unique<Simulation>(cfg);
  for (std::size_t i = 0; i < n; ++i)
    sim->add_process(std::make_unique<Counter>());
  return sim;
}

TEST(Faults, BudgetEnforced) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::silent());
  EXPECT_THROW(sim.corrupt(1, FaultPlan::silent()), PreconditionError);
  EXPECT_EQ(sim.corrupted_count(), 1u);
  EXPECT_TRUE(sim.is_corrupted(0));
  EXPECT_FALSE(sim.is_corrupted(1));
}

TEST(Faults, RecorruptionUpdatesBehaviourWithoutBudget) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::silent());
  sim.corrupt(0, FaultPlan::crash());  // allowed: same process
  EXPECT_EQ(sim.corrupted_count(), 1u);
}

TEST(Faults, SilentProcessSendsNothing) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::silent());
  sim.start();
  sim.run();
  // Correct processes got 3 broadcasts (from 1,2,3), not 4.
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Counter&>(sim.process(i)).received, 3) << i;
  // The silent process still receives.
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(0)).received, 3);
}

TEST(Faults, CrashedProcessNeitherSendsNorReceives) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::crash());
  sim.start();
  sim.run();
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(0)).received, 0);
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Counter&>(sim.process(i)).received, 3) << i;
}

TEST(Faults, SelectiveSendsOnlyToTargets) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::selective({1}));
  sim.start();
  sim.run();
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(1)).received, 4);  // has 0's msg
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(2)).received, 3);
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(3)).received, 3);
}

TEST(Faults, JunkCorruptsPayloadSameLength) {
  auto sim_ptr = make_counters(4, 1, /*seed=*/3);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::junk());
  sim.start();
  sim.run();
  auto& c1 = dynamic_cast<Counter&>(sim.process(1));
  EXPECT_EQ(c1.received, 4);     // message still arrives…
  EXPECT_EQ(c1.valid, 3);        // …but its payload no longer matches
}

TEST(Faults, ByzantineWordsExcludedFromCorrectCount) {
  auto honest_ptr = make_counters(4, 0);
  Simulation& honest = *honest_ptr;
  honest.start();
  honest.run();
  auto faulty_ptr = make_counters(4, 1);
  Simulation& faulty = *faulty_ptr;
  faulty.corrupt(0, FaultPlan::junk());  // still sends, but as Byzantine
  faulty.start();
  faulty.run();
  EXPECT_EQ(honest.metrics().correct_words(), 4u * 4u);
  EXPECT_EQ(faulty.metrics().correct_words(), 3u * 4u);
  EXPECT_EQ(faulty.metrics().total_words(), 4u * 4u);
}

TEST(Faults, NoFrontRunning_PendingMessagesSurviveCorruption) {
  // Process 0 broadcasts at start; corrupting it *after* start() (messages
  // already in flight) must not retract those messages.
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.start();  // all broadcasts enqueued
  sim.corrupt(0, FaultPlan::crash());
  sim.run();
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Counter&>(sim.process(i)).received, 4) << i;
}

TEST(Faults, OnCorruptHookFires) {
  class Hooked final : public Process {
   public:
    void on_start(Context&) override {}
    void on_message(Context&, const Message&) override {}
    void on_corrupt(Context&) override { hooked = true; }
    bool hooked = false;
  };
  SimConfig cfg;
  cfg.n = 2;
  cfg.f = 1;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Hooked>());
  sim.add_process(std::make_unique<Hooked>());
  sim.start();
  sim.corrupt(0, FaultPlan::silent());
  EXPECT_TRUE(dynamic_cast<Hooked&>(sim.process(0)).hooked);
  EXPECT_FALSE(dynamic_cast<Hooked&>(sim.process(1)).hooked);
}

}  // namespace
}  // namespace coincidence::sim
