#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/ser.h"
#include "sim/simulation.h"
#include "sim/snapshot.h"

namespace coincidence::sim {
namespace {

/// Everyone broadcasts one "v" message at start and counts receipts.
class Counter final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.broadcast("v", bytes_of("v"), 1); }
  void on_message(Context&, const Message& msg) override {
    if (msg.tag == "v") ++received;
    if (!msg.payload.empty() && msg.payload == bytes_of("v")) ++valid;
  }
  int received = 0;
  int valid = 0;
};

std::unique_ptr<Simulation> make_counters(std::size_t n, std::size_t f,
                                          std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  auto sim = std::make_unique<Simulation>(cfg);
  for (std::size_t i = 0; i < n; ++i)
    sim->add_process(std::make_unique<Counter>());
  return sim;
}

TEST(Faults, BudgetEnforced) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::silent());
  EXPECT_THROW(sim.corrupt(1, FaultPlan::silent()), PreconditionError);
  EXPECT_EQ(sim.corrupted_count(), 1u);
  EXPECT_TRUE(sim.is_corrupted(0));
  EXPECT_FALSE(sim.is_corrupted(1));
}

TEST(Faults, RecorruptionUpdatesBehaviourWithoutBudget) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::silent());
  sim.corrupt(0, FaultPlan::crash());  // allowed: same process
  EXPECT_EQ(sim.corrupted_count(), 1u);
}

TEST(Faults, SilentProcessSendsNothing) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::silent());
  sim.start();
  sim.run();
  // Correct processes got 3 broadcasts (from 1,2,3), not 4.
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Counter&>(sim.process(i)).received, 3) << i;
  // The silent process still receives.
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(0)).received, 3);
}

TEST(Faults, CrashedProcessNeitherSendsNorReceives) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::crash());
  sim.start();
  sim.run();
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(0)).received, 0);
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Counter&>(sim.process(i)).received, 3) << i;
}

TEST(Faults, SelectiveSendsOnlyToTargets) {
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::selective({1}));
  sim.start();
  sim.run();
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(1)).received, 4);  // has 0's msg
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(2)).received, 3);
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(3)).received, 3);
}

TEST(Faults, JunkCorruptsPayloadSameLength) {
  auto sim_ptr = make_counters(4, 1, /*seed=*/3);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::junk());
  sim.start();
  sim.run();
  auto& c1 = dynamic_cast<Counter&>(sim.process(1));
  EXPECT_EQ(c1.received, 4);     // message still arrives…
  EXPECT_EQ(c1.valid, 3);        // …but its payload no longer matches
}

TEST(Faults, ByzantineWordsExcludedFromCorrectCount) {
  auto honest_ptr = make_counters(4, 0);
  Simulation& honest = *honest_ptr;
  honest.start();
  honest.run();
  auto faulty_ptr = make_counters(4, 1);
  Simulation& faulty = *faulty_ptr;
  faulty.corrupt(0, FaultPlan::junk());  // still sends, but as Byzantine
  faulty.start();
  faulty.run();
  EXPECT_EQ(honest.metrics().correct_words(), 4u * 4u);
  EXPECT_EQ(faulty.metrics().correct_words(), 3u * 4u);
  EXPECT_EQ(faulty.metrics().total_words(), 4u * 4u);
}

TEST(Faults, NoFrontRunning_PendingMessagesSurviveCorruption) {
  // Process 0 broadcasts at start; corrupting it *after* start() (messages
  // already in flight) must not retract those messages.
  auto sim_ptr = make_counters(4, 1);
  Simulation& sim = *sim_ptr;
  sim.start();  // all broadcasts enqueued
  sim.corrupt(0, FaultPlan::crash());
  sim.run();
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Counter&>(sim.process(i)).received, 4) << i;
}

TEST(Faults, JunkIsSeedReproducible) {
  // kJunk draws its garbage from the corrupted process's forked Rng, so a
  // junk run is as replayable as an honest one: same seed, same garbage.
  class PayloadTap final : public Process {
   public:
    void on_start(Context& ctx) override {
      ctx.broadcast("v", Bytes(16, 0xab), 1);
    }
    void on_message(Context&, const Message& msg) override {
      if (msg.from == 0) from_zero.push_back(msg.payload.to_bytes());
    }
    std::vector<Bytes> from_zero;
  };
  auto run = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = seed;
    auto sim = std::make_unique<Simulation>(cfg);
    for (int i = 0; i < 4; ++i)
      sim->add_process(std::make_unique<PayloadTap>());
    sim->corrupt(0, FaultPlan::junk());
    sim->start();
    sim->run();
    return sim;
  };
  auto a = run(41);
  auto b = run(41);
  auto c = run(42);
  for (ProcessId i = 1; i < 4; ++i) {
    const auto& pa = dynamic_cast<PayloadTap&>(a->process(i)).from_zero;
    const auto& pb = dynamic_cast<PayloadTap&>(b->process(i)).from_zero;
    ASSERT_EQ(pa.size(), 1u) << i;
    EXPECT_EQ(pa, pb) << i;  // identical seeds: identical garbage
    EXPECT_NE(pa[0], Bytes(16, 0xab)) << i;  // and it *is* garbage
  }
  // A different seed produces different garbage (16 random bytes — a
  // collision would be a 2^-128 event).
  const auto& pa = dynamic_cast<PayloadTap&>(a->process(1)).from_zero;
  const auto& pc = dynamic_cast<PayloadTap&>(c->process(1)).from_zero;
  ASSERT_EQ(pc.size(), 1u);
  EXPECT_NE(pa[0], pc[0]);
}

// ----------------------------------------------------- crash-recover --

/// Persists a counter of processed messages; announces its restart.
class Phoenix final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.broadcast("v", bytes_of("v"), 1); }
  void on_message(Context& ctx, const Message& msg) override {
    if (msg.tag == "hello") ++hellos;
    if (msg.tag != "v") return;
    ++received;
    Writer w;
    w.u64(static_cast<std::uint64_t>(received));
    ctx.persist(StateSnapshot::pack("phoenix", 1, w.take()));
  }
  void on_recover(Context& ctx, const Bytes& snapshot) override {
    recovered = true;
    received = 0;  // in-memory state is gone; rebuild from the snapshot
    Bytes state;
    if (StateSnapshot::unpack(snapshot, "phoenix", 1, state)) {
      Reader r(state);
      restored = static_cast<int>(r.u64());
    }
    ctx.broadcast("hello", bytes_of("h"), 1);
  }
  int received = 0;
  int restored = -1;
  int hellos = 0;
  bool recovered = false;
};

std::unique_ptr<Simulation> make_phoenixes(std::size_t n, std::size_t f,
                                           std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.seed = seed;
  auto sim = std::make_unique<Simulation>(cfg);
  for (std::size_t i = 0; i < n; ++i)
    sim->add_process(std::make_unique<Phoenix>());
  return sim;
}

TEST(Faults, CrashRecoverRestartsAndCanSendAgain) {
  auto sim_ptr = make_phoenixes(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::crash_recover(6));
  EXPECT_TRUE(sim.is_down(0));
  EXPECT_FALSE(sim.has_recovered(0));
  sim.start();
  sim.run();
  EXPECT_TRUE(sim.has_recovered(0));
  EXPECT_FALSE(sim.is_down(0));
  // The corruption budget stays spent — recovery is not a pardon.
  EXPECT_TRUE(sim.is_corrupted(0));
  EXPECT_EQ(sim.corrupted_count(), 1u);
  auto& p0 = dynamic_cast<Phoenix&>(sim.process(0));
  EXPECT_TRUE(p0.recovered);
  // Its post-restart broadcast reached everyone: it can send again.
  for (ProcessId i = 1; i < 4; ++i)
    EXPECT_EQ(dynamic_cast<Phoenix&>(sim.process(i)).hellos, 1) << i;
}

TEST(Faults, CrashRecoverHandsBackPersistedSnapshot) {
  // Corrupt only after some messages were processed and persisted.
  auto sim_ptr = make_phoenixes(4, 1);
  Simulation& sim = *sim_ptr;
  sim.start();
  // Let the run finish, then crash-recover: the snapshot must reflect
  // everything process 0 persisted before the crash.
  sim.run();
  const int before = dynamic_cast<Phoenix&>(sim.process(0)).received;
  ASSERT_GT(before, 0);
  sim.corrupt(0, FaultPlan::crash_recover(3));
  sim.run();  // idle-advances straight to the restart
  auto& p0 = dynamic_cast<Phoenix&>(sim.process(0));
  EXPECT_TRUE(p0.recovered);
  EXPECT_EQ(p0.restored, before);
}

TEST(Faults, CrashRecoverDownWindowDropsTraffic) {
  auto sim_ptr = make_phoenixes(4, 1);
  Simulation& sim = *sim_ptr;
  // Down long past the run's natural length: while down, nothing is
  // received; the broadcasts of others are simply lost to it.
  sim.corrupt(0, FaultPlan::crash_recover(1000));
  sim.start();
  sim.run();
  auto& p0 = dynamic_cast<Phoenix&>(sim.process(0));
  EXPECT_TRUE(p0.recovered);       // idle-advance still reached the restart
  EXPECT_EQ(p0.received, 0);       // but the down window ate everything
  EXPECT_EQ(p0.restored, -1);      // never persisted anything either
}

TEST(Faults, RecorruptionCancelsPendingRecovery) {
  auto sim_ptr = make_phoenixes(4, 1);
  Simulation& sim = *sim_ptr;
  sim.corrupt(0, FaultPlan::crash_recover(5));
  sim.corrupt(0, FaultPlan::crash());  // the adversary changed its mind
  sim.start();
  sim.run();
  EXPECT_FALSE(sim.has_recovered(0));
  EXPECT_FALSE(dynamic_cast<Phoenix&>(sim.process(0)).recovered);
}

TEST(Faults, OnCorruptHookFires) {
  class Hooked final : public Process {
   public:
    void on_start(Context&) override {}
    void on_message(Context&, const Message&) override {}
    void on_corrupt(Context&) override { hooked = true; }
    bool hooked = false;
  };
  SimConfig cfg;
  cfg.n = 2;
  cfg.f = 1;
  Simulation sim(cfg);
  sim.add_process(std::make_unique<Hooked>());
  sim.add_process(std::make_unique<Hooked>());
  sim.start();
  sim.corrupt(0, FaultPlan::silent());
  EXPECT_TRUE(dynamic_cast<Hooked&>(sim.process(0)).hooked);
  EXPECT_FALSE(dynamic_cast<Hooked&>(sim.process(1)).hooked);
}

}  // namespace
}  // namespace coincidence::sim
