// Replicated-log layer (src/session): pipelined MultiValuedBa slots
// deciding a contiguous log over one trusted setup. Covers the log
// properties the per-protocol tests cannot: contiguous commit under
// out-of-order slot decisions, byte-identical logs across processes
// (fingerprint agreement), deterministic client batches, and shard-count
// invariance of the whole stack (RBC + MvBa + skip wakeups + log).
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/env.h"
#include "session/log_driver.h"
#include "session/replicated_log.h"

namespace coincidence::session {
namespace {

LogConfig log_config(const core::Env& env) {
  LogConfig cfg;
  cfg.params = env.params;
  cfg.vrf = env.vrf;
  cfg.registry = env.registry;
  cfg.sampler = env.sampler;
  cfg.signer = env.signer;
  cfg.batcher = env.batcher;
  return cfg;
}

TEST(ReplicatedLog, CommitsFullLogWithAgreementAndLatencies) {
  core::Env env = core::Env::make_relaxed(48, 31);
  LogRunOptions opts;
  opts.slots = 4;
  opts.pipeline_depth = 2;
  opts.batch_size = 4;
  opts.sim_seed = 3;
  LogReport r = run_replicated_log(env, opts);

  ASSERT_TRUE(r.all_committed);
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.noop_slots, 0u);
  // Every slot adopted exactly one proposer's batch of 4 requests.
  EXPECT_EQ(r.requests_committed, 16u);
  EXPECT_GT(r.requests_per_100k_deliveries, 0.0);
  EXPECT_EQ(r.fingerprint.size(), 64u);  // hex sha256
  // Decide latencies are measured on the delivery clock and ordered.
  EXPECT_GT(r.decide_latency_p50, 0u);
  EXPECT_LE(r.decide_latency_p50, r.decide_latency_p90);
  EXPECT_LE(r.decide_latency_p90, r.decide_latency_max);
}

TEST(ReplicatedLog, SixteenSlotsCommitUnderSilentFaults) {
  // The 16-slot regression the binary session wedged on (14/16 in
  // BENCH_session.json): the log layer must decide and commit every
  // slot with the auto-scaled skip fallback armed.
  core::Env env = core::Env::make_relaxed(48, 15);
  LogRunOptions opts;
  opts.slots = 16;
  opts.pipeline_depth = 4;
  opts.batch_size = 4;
  opts.silent_faults = 2;
  opts.sim_seed = 23;
  LogReport r = run_replicated_log(env, opts);

  ASSERT_TRUE(r.all_committed);
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.requests_committed, 16u * 4u - 4u * r.noop_slots);
}

TEST(ReplicatedLog, ShardCountCannotLeakIntoTheLog) {
  core::Env env = core::Env::make_relaxed(48, 21);
  std::optional<LogReport> base;
  for (std::size_t shards : {1, 2, 4, 8}) {
    LogRunOptions opts;
    opts.slots = 4;
    opts.pipeline_depth = 2;
    opts.batch_size = 2;
    opts.silent_faults = 1;
    opts.sim_seed = 21;
    opts.shards = shards;
    LogReport r = run_replicated_log(env, opts);
    ASSERT_TRUE(r.all_committed) << "shards=" << shards;
    ASSERT_TRUE(r.agreement) << "shards=" << shards;
    if (!base) {
      base = std::move(r);
      continue;
    }
    // The whole stack — RBC, candidate BAs, skip wakeups, commit order —
    // must be a function of (seed, n) only; shards partition the work.
    EXPECT_EQ(r.fingerprint, base->fingerprint) << "shards=" << shards;
    EXPECT_EQ(r.deliveries, base->deliveries) << "shards=" << shards;
    EXPECT_EQ(r.correct_words, base->correct_words) << "shards=" << shards;
    EXPECT_EQ(r.messages, base->messages) << "shards=" << shards;
    EXPECT_EQ(r.duration, base->duration) << "shards=" << shards;
    EXPECT_EQ(r.requests_committed, base->requests_committed);
    EXPECT_EQ(r.decide_latency_p50, base->decide_latency_p50);
    EXPECT_EQ(r.rounds_skipped, base->rounds_skipped);
  }
}

TEST(ReplicatedLog, ErasureCodedBackendCommitsTheSameRequests) {
  // Same Env, same seeds, both dissemination backends: the committed
  // logs must both satisfy the layer's contract (full commit, agreement,
  // every batch some proposer's), and the EC backend must pay fewer
  // dissemination words — the whole point of the AVID-M path.
  core::Env env = core::Env::make_relaxed(48, 31);
  LogRunOptions opts;
  opts.slots = 4;
  opts.pipeline_depth = 2;
  // 64-request batches (~2KB proposals): past the crossover where the
  // coded path's per-echo λ·log2(n) branch overhead is amortized by the
  // k-fold fragment shrink. (At the 4-request default the branch words
  // dominate a 120-byte value and Bracha is honestly cheaper.)
  opts.batch_size = 64;
  opts.silent_faults = 2;
  opts.sim_seed = 7;

  opts.rbc = ba::RbcBackend::kBracha;
  LogReport bracha = run_replicated_log(env, opts);
  opts.rbc = ba::RbcBackend::kEc;
  LogReport ec = run_replicated_log(env, opts);

  ASSERT_TRUE(bracha.all_committed);
  ASSERT_TRUE(ec.all_committed);
  EXPECT_TRUE(bracha.agreement);
  EXPECT_TRUE(ec.agreement);
  // Candidate races can resolve differently (the word schedule reshapes
  // the delivery interleaving), so the adopted batches may differ — but
  // both backends commit full batches of batch_size requests.
  EXPECT_EQ(bracha.requests_committed,
            64u * (opts.slots - bracha.noop_slots));
  EXPECT_EQ(ec.requests_committed, 64u * (opts.slots - ec.noop_slots));
  // The dissemination bill: n proposals of ~2KB per slot cost n²·|v|
  // words under Bracha and O(n·|v| + n²·λ·log n) under EC — at least
  // 2× total words saved here (RBC dominates the slot cost).
  EXPECT_LT(2 * ec.correct_words, bracha.correct_words);
}

TEST(ReplicatedLog, ErasureCodedShardCountCannotLeakIntoTheLog) {
  // The shard-invariance contract must hold on the EC backend too: its
  // encode/decode work happens inside handlers, but every observable —
  // sends, readies, deliveries, telemetry — replays in canonical order.
  core::Env env = core::Env::make_relaxed(48, 21);
  std::optional<LogReport> base;
  for (std::size_t shards : {1, 2, 4, 8}) {
    LogRunOptions opts;
    opts.slots = 4;
    opts.pipeline_depth = 2;
    opts.batch_size = 2;
    opts.silent_faults = 1;
    opts.sim_seed = 21;
    opts.shards = shards;
    opts.rbc = ba::RbcBackend::kEc;
    LogReport r = run_replicated_log(env, opts);
    ASSERT_TRUE(r.all_committed) << "shards=" << shards;
    ASSERT_TRUE(r.agreement) << "shards=" << shards;
    if (!base) {
      base = std::move(r);
      continue;
    }
    EXPECT_EQ(r.fingerprint, base->fingerprint) << "shards=" << shards;
    EXPECT_EQ(r.deliveries, base->deliveries) << "shards=" << shards;
    EXPECT_EQ(r.correct_words, base->correct_words) << "shards=" << shards;
    EXPECT_EQ(r.messages, base->messages) << "shards=" << shards;
    EXPECT_EQ(r.duration, base->duration) << "shards=" << shards;
    EXPECT_EQ(r.requests_committed, base->requests_committed);
    EXPECT_EQ(r.decide_latency_p50, base->decide_latency_p50);
    EXPECT_EQ(r.rounds_skipped, base->rounds_skipped);
  }
}

TEST(ReplicatedLog, ClientBatchesAreDeterministicAndDistinct) {
  core::Env env = core::Env::make_relaxed(48, 5);
  LogConfig cfg = log_config(env);
  cfg.batch_size = 3;
  LogProcess a(cfg), b(cfg);

  // Same (seed, proposer, slot) => same batch on every replica; any
  // coordinate change => a different batch.
  EXPECT_EQ(a.batch_for(7, 2), b.batch_for(7, 2));
  EXPECT_NE(a.batch_for(7, 2), a.batch_for(7, 3));
  EXPECT_NE(a.batch_for(7, 2), a.batch_for(8, 2));

  // batch_size requests, newline-joined, tagged with the proposer.
  const Bytes batch = a.batch_for(7, 2);
  const std::string s(batch.begin(), batch.end());
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_EQ(s.rfind("c7-", 0), 0u);

  LogConfig other = cfg;
  other.client_seed = 0xDEAD;
  LogProcess c(other);
  EXPECT_NE(a.batch_for(7, 2), c.batch_for(7, 2));
}

TEST(ReplicatedLog, AutoSkipTimeoutScalesWithLoad) {
  // The silence budget grows with n (bigger committees, more traffic
  // per round) and with the pipeline depth (concurrent slots share the
  // delivery clock).
  EXPECT_EQ(auto_skip_timeout(48, 1), 192u * 48u);
  EXPECT_EQ(auto_skip_timeout(48, 4), 192u * 48u * 4u);
  EXPECT_LT(auto_skip_timeout(48, 2), auto_skip_timeout(96, 2));
  // Depth 0 is clamped — the fallback never gets a zero budget.
  EXPECT_EQ(auto_skip_timeout(48, 0), auto_skip_timeout(48, 1));
}

}  // namespace
}  // namespace coincidence::session
