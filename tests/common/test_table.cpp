#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/errors.h"

namespace coincidence {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"proto", "words"});
  t.add_row({"ours", "123"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("proto"), std::string::npos);
  EXPECT_NE(out.find("ours"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, ColumnsAligned) {
  Table t({"x"});
  t.add_row({"longer-cell"});
  std::ostringstream os;
  t.print(os);
  // header line must be padded to the widest cell
  std::string first_line = os.str().substr(0, os.str().find('\n'));
  EXPECT_GE(first_line.size(), std::string("| longer-cell |").size());
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, CountFormatting) {
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(999), "999");
  EXPECT_EQ(Table::count(1000), "1 000");
  EXPECT_EQ(Table::count(1234567), "1 234 567");
}

TEST(Table, RowsCounter) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace coincidence
