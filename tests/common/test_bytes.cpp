#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace coincidence {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("AB"), Bytes{0xab});
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), CodecError);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), CodecError);
  EXPECT_THROW(from_hex("0g"), CodecError);
}

TEST(Bytes, BytesOfString) {
  Bytes b = bytes_of("abc");
  EXPECT_EQ(b, (Bytes{'a', 'b', 'c'}));
}

TEST(Bytes, U64RoundTrip) {
  std::uint64_t v = 0x0123456789abcdefULL;
  Bytes b = bytes_of_u64(v);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[7], 0xef);
  EXPECT_EQ(u64_of_bytes(b), v);
}

TEST(Bytes, U64Zero) {
  EXPECT_EQ(u64_of_bytes(bytes_of_u64(0)), 0u);
}

TEST(Bytes, U64Max) {
  EXPECT_EQ(u64_of_bytes(bytes_of_u64(~0ULL)), ~0ULL);
}

TEST(Bytes, Concat) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = concat({BytesView(a), BytesView(b), BytesView(a)});
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
}

TEST(Bytes, Append) {
  Bytes a = {1};
  append(a, Bytes{2, 3});
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
}

TEST(Bytes, CtEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

}  // namespace
}  // namespace coincidence
