#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/errors.h"

namespace coincidence {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowOne) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoolEdges) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NextBytesLengthAndVariety) {
  Rng rng(23);
  auto b = rng.next_bytes(1000);
  EXPECT_EQ(b.size(), 1000u);
  std::set<std::uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 200u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(37);
  Rng child = parent.fork();
  // Child and parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitmixKnownSequenceIsStable) {
  // Regression pin: deterministic reproducibility across platforms.
  std::uint64_t s = 0;
  std::uint64_t first = splitmix64(s);
  std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

}  // namespace
}  // namespace coincidence
