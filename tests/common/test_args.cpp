#include "common/args.h"

#include <gtest/gtest.h>

#include <vector>

namespace coincidence {
namespace {

Args make_args(std::vector<std::string> argv) {
  std::vector<char*> ptrs;
  static std::vector<std::string> storage;  // keep strings alive
  storage = std::move(argv);
  ptrs.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, EqualsForm) {
  Args a = make_args({"--n=64", "--eps=0.12"});
  EXPECT_EQ(a.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(a.get_double("eps", 0), 0.12);
}

TEST(Args, SpaceForm) {
  Args a = make_args({"--n", "32"});
  EXPECT_EQ(a.get_int("n", 0), 32);
}

TEST(Args, BooleanFlag) {
  Args a = make_args({"--verbose"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, Defaults) {
  Args a = make_args({});
  EXPECT_EQ(a.get("name", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(a.get_bool("b", true));
}

TEST(Args, Positional) {
  Args a = make_args({"cmd", "--k=v", "arg2"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "cmd");
  EXPECT_EQ(a.positional()[1], "arg2");
}

TEST(Args, BoolParsing) {
  Args a = make_args({"--x=yes", "--y=0", "--z=true"});
  EXPECT_TRUE(a.get_bool("x", false));
  EXPECT_FALSE(a.get_bool("y", true));
  EXPECT_TRUE(a.get_bool("z", false));
}

}  // namespace
}  // namespace coincidence
