// LogHistogram (ISSUE 4 tentpole): log-bucketed telemetry histogram —
// bucket placement, merge, percentile endpoints, and the deterministic
// JSON / Prometheus export formats.
#include "common/log_hist.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace coincidence {
namespace {

TEST(LogHistogram, EmptyHistogramIsInert) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.brief(), "");
}

TEST(LogHistogram, BucketPlacementFollowsBitWidth) {
  LogHistogram h;
  h.add(0);  // bucket 0
  h.add(1);  // bucket 1: [1, 2)
  h.add(2);  // bucket 2: [2, 4)
  h.add(3);  // bucket 2
  h.add(4);  // bucket 3: [4, 8)
  h.add(7);  // bucket 3
  h.add(8);  // bucket 4: [8, 16)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.max(), 8u);
}

TEST(LogHistogram, BucketUpperBoundsAreInclusive) {
  EXPECT_EQ(LogHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_upper(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_upper(2), 3u);
  EXPECT_EQ(LogHistogram::bucket_upper(3), 7u);
  EXPECT_EQ(LogHistogram::bucket_upper(64), UINT64_MAX);
}

TEST(LogHistogram, SingleSamplePercentileEndpoints) {
  LogHistogram h;
  h.add(42);  // bucket 6: [32, 64), upper bound 63
  EXPECT_EQ(h.percentile(0.0), 63u);
  EXPECT_EQ(h.percentile(0.5), 63u);
  EXPECT_EQ(h.percentile(1.0), 63u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LogHistogram, PercentileIsConservativeUpperBound) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.add(1);   // bucket 1, upper 1
  for (int i = 0; i < 10; ++i) h.add(100);  // bucket 7, upper 127
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 1u);
  EXPECT_EQ(h.percentile(0.99), 127u);
  EXPECT_EQ(h.percentile(1.0), 127u);
}

TEST(LogHistogram, MergeAddsCountsSumAndMax) {
  LogHistogram a, b;
  a.add(1);
  a.add(5);
  b.add(5);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.sum(), 1011u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.bucket_count(3), 2u);  // both fives
}

TEST(LogHistogram, BriefListsNonEmptyBucketsInOrder) {
  LogHistogram h;
  h.add(0);
  h.add(0);
  h.add(9);
  EXPECT_EQ(h.brief(), "0:2 4:1");
}

TEST(LogHistogram, JsonExportIsDeterministic) {
  auto render = [] {
    LogHistogram h;
    h.add(3);
    h.add(12);
    std::ostringstream os;
    h.to_json(os);
    return os.str();
  };
  const std::string a = render();
  EXPECT_EQ(a, render());
  EXPECT_NE(a.find("\"total\":2"), std::string::npos);
  EXPECT_NE(a.find("\"sum\":15"), std::string::npos);
  EXPECT_NE(a.find("\"buckets\""), std::string::npos);
}

TEST(LogHistogram, PrometheusExportIsCumulativeWithInf) {
  LogHistogram h;
  h.add(1);
  h.add(3);
  std::ostringstream os;
  h.to_prometheus(os, "coin_latency", "phase=\"coin/first\"");
  const std::string out = os.str();
  EXPECT_NE(out.find("coin_latency_bucket"), std::string::npos);
  EXPECT_NE(out.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(out.find("coin_latency_sum"), std::string::npos);
  EXPECT_NE(out.find("coin_latency_count"), std::string::npos);
  EXPECT_NE(out.find("phase=\"coin/first\""), std::string::npos);
}

}  // namespace
}  // namespace coincidence
