#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/errors.h"

namespace coincidence {
namespace {

TEST(Stats, SummaryBasics) {
  Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingle) {
  Summary s = summarize({42});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 10.0);
}

TEST(Stats, PercentileRejectsBadQ) {
  std::vector<double> v{1};
  EXPECT_THROW(percentile_sorted(v, -0.1), PreconditionError);
  EXPECT_THROW(percentile_sorted(v, 1.1), PreconditionError);
}

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW(percentile_sorted({}, 0.5), PreconditionError);
}

TEST(Stats, WilsonIntervalContainsP) {
  Interval iv = wilson_interval(50, 100);
  EXPECT_LT(iv.lo, 0.5);
  EXPECT_GT(iv.hi, 0.5);
  EXPECT_GT(iv.lo, 0.35);
  EXPECT_LT(iv.hi, 0.65);
}

TEST(Stats, WilsonIntervalEdges) {
  Interval zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_LT(zero.hi, 0.1);
  Interval all = wilson_interval(100, 100);
  EXPECT_GT(all.lo, 0.9);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  Interval empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(Stats, WilsonNarrowsWithSamples) {
  Interval small = wilson_interval(5, 10);
  Interval big = wilson_interval(500, 1000);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

TEST(Stats, FitLineExact) {
  LinearFit f = fit_line({1, 2, 3}, {3, 5, 7});  // y = 1 + 2x
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
}

TEST(Stats, FitLineRejectsDegenerate) {
  EXPECT_THROW(fit_line({1}, {2}), PreconditionError);
  EXPECT_THROW(fit_line({1, 1}, {2, 3}), PreconditionError);
  EXPECT_THROW(fit_line({1, 2}, {1}), PreconditionError);
}

TEST(Stats, LogLogSlopeQuadratic) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);
  }
  EXPECT_NEAR(loglog_slope(xs, ys), 2.0, 1e-9);
}

TEST(Stats, LogLogSlopeNlogn) {
  std::vector<double> xs, ys;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    xs.push_back(x);
    ys.push_back(x * std::log(x));
  }
  double slope = loglog_slope(xs, ys);
  EXPECT_GT(slope, 1.0);
  EXPECT_LT(slope, 1.4);
}

TEST(Stats, LogLogSlopeSkipsNonPositive) {
  double slope = loglog_slope({0.0, 2.0, 4.0, 8.0}, {5.0, 2.0, 4.0, 8.0});
  EXPECT_NEAR(slope, 1.0, 1e-9);  // the x=0 point must be ignored
}

}  // namespace
}  // namespace coincidence

namespace coincidence {
namespace {

TEST(Histogram, CountsAndSummary) {
  Histogram h;
  for (std::uint64_t v : {0, 0, 1, 3, 3, 3}) h.add(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(3), 3u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.max_value(), 3u);
  EXPECT_EQ(h.summary(), "0:2 1:1 3:3");
}

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.summary(), "");
  std::ostringstream os;
  h.print(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(Histogram, PrintScalesBars) {
  Histogram h;
  for (int i = 0; i < 40; ++i) h.add(1);
  h.add(2);
  std::ostringstream os;
  h.print(os, 40);
  std::string out = os.str();
  EXPECT_NE(out.find("1 | ######################################## 40"),
            std::string::npos);
  EXPECT_NE(out.find("2 | # 1"), std::string::npos);
}

}  // namespace
}  // namespace coincidence
