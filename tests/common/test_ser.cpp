#include "common/ser.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace coincidence {
namespace {

TEST(Ser, RoundTripAllTypes) {
  Writer w;
  w.u8(7).u32(0xdeadbeef).u64(0x0123456789abcdefULL).blob(Bytes{1, 2, 3}).str("hello");
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_NO_THROW(r.done());
}

TEST(Ser, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4}));
}

TEST(Ser, EmptyBlob) {
  Writer w;
  w.blob({});
  Reader r(w.bytes());
  EXPECT_TRUE(r.blob().empty());
  r.done();
}

TEST(Ser, TruncatedU64Throws) {
  Bytes data{1, 2, 3};
  Reader r(data);
  EXPECT_THROW(r.u64(), CodecError);
}

TEST(Ser, TruncatedBlobThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, but none do
  Reader r(w.bytes());
  EXPECT_THROW(r.blob(), CodecError);
}

TEST(Ser, TrailingBytesDetected) {
  Writer w;
  w.u8(1).u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.done(), CodecError);
}

TEST(Ser, EmptyReaderIsDone) {
  Reader r(Bytes{});
  EXPECT_TRUE(r.empty());
  EXPECT_NO_THROW(r.done());
}

TEST(Ser, ReadPastEndThrows) {
  Reader r(Bytes{});
  EXPECT_THROW(r.u8(), CodecError);
}

TEST(Ser, NestedBlobs) {
  Writer inner;
  inner.u32(99).str("x");
  Writer outer;
  outer.blob(inner.bytes()).u8(5);
  Reader r(outer.bytes());
  Bytes blob = r.blob();
  EXPECT_EQ(r.u8(), 5);
  r.done();
  Reader ri(blob);
  EXPECT_EQ(ri.u32(), 99u);
  EXPECT_EQ(ri.str(), "x");
  ri.done();
}

}  // namespace
}  // namespace coincidence
