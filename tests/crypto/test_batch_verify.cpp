// Batch verification equivalence suite: DdhVrf::batch_verify must accept
// and reject EXACTLY the entries per-proof verify() would — under honest
// batches, adversarial per-field mutations, and every mix in between —
// and its DRBG combiner must be deterministic across replays and thread
// counts. The BatchVerifier/VerifyMemo plumbing on top is covered here
// too, since its contract is the same bit-identity.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "coin/verify_queue.h"
#include "common/errors.h"
#include "common/parallel.h"
#include "common/ser.h"
#include "crypto/ddh_vrf.h"
#include "crypto/fast_vrf.h"
#include "crypto/key_registry.h"
#include "crypto/verify_memo.h"

namespace coincidence::crypto {
namespace {

const DdhVrf& vrf() {
  static const DdhVrf v{PrimeGroup::generate(128, 11)};
  return v;
}

const std::vector<VrfKeyPair>& keys() {
  static const std::vector<VrfKeyPair> ks = [] {
    Rng rng(7);
    std::vector<VrfKeyPair> out;
    for (int i = 0; i < 8; ++i) out.push_back(vrf().keygen(rng));
    return out;
  }();
  return ks;
}

/// Owned storage for a batch: entries() views point into these vectors,
/// which never reallocate after construction.
struct Batch {
  std::vector<Bytes> pks, inputs, values, proofs;

  std::size_t size() const { return pks.size(); }

  void push_honest(std::size_t key_idx, BytesView input) {
    const VrfKeyPair& kp = keys()[key_idx % keys().size()];
    VrfOutput out = vrf().eval(kp.sk, input);
    pks.push_back(kp.pk);
    inputs.push_back(Bytes(input.begin(), input.end()));
    values.push_back(std::move(out.value));
    proofs.push_back(std::move(out.proof));
  }

  std::vector<VrfBatchEntry> entries() const {
    std::vector<VrfBatchEntry> es;
    es.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
      es.push_back(VrfBatchEntry{pks[i], inputs[i], values[i], proofs[i]});
    return es;
  }
};

Batch make_honest(std::size_t k, std::size_t distinct_inputs = 3,
                  std::uint64_t salt = 0) {
  Batch b;
  for (std::size_t i = 0; i < k; ++i) {
    Writer w;
    w.str("round").u64(salt * 1000 + i % distinct_inputs);
    b.push_honest(i, w.take());
  }
  return b;
}

/// The ground truth both paths must match.
std::vector<char> serial_verdicts(const std::vector<VrfBatchEntry>& es) {
  std::vector<char> out;
  for (const auto& e : es)
    out.push_back(vrf().verify(e.pk, e.input, e.value, e.proof) ? 1 : 0);
  return out;
}

void expect_batch_matches_serial(const Batch& b) {
  auto es = b.entries();
  std::vector<char> got;
  vrf().batch_verify(es, got);
  EXPECT_EQ(got, serial_verdicts(es));
}

/// Re-encodes `proof` with blob `which` (0=Γ, 1=a, 2=b, 3=s) mutated by
/// `mutate`. Exercises each field of the DLEQ transcript individually.
Bytes mutate_proof_blob(const Bytes& proof, int which,
                        const std::function<void(Bytes&)>& mutate) {
  // A proof an earlier fuzz mutation already destroyed may no longer
  // parse; any unparseable bytes are as forged as it gets, keep them.
  try {
    Reader r(proof);
    std::vector<Bytes> blobs;
    for (int i = 0; i < 4; ++i) blobs.push_back(r.blob());
    mutate(blobs[static_cast<std::size_t>(which)]);
    Writer w;
    for (const Bytes& blob : blobs) w.blob(blob);
    return w.take();
  } catch (const CodecError&) {
    return proof;
  }
}

TEST(BatchVerify, AllHonestAccepted) {
  Batch b = make_honest(20);
  auto es = b.entries();
  std::vector<char> got;
  vrf().batch_verify(es, got);
  ASSERT_EQ(got.size(), es.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 1) << i;
}

TEST(BatchVerify, EmptyAndSingletonBatches) {
  std::vector<VrfBatchEntry> none;
  std::vector<char> got;
  vrf().batch_verify(none, got);
  EXPECT_TRUE(got.empty());

  Batch one = make_honest(1);
  expect_batch_matches_serial(one);
}

TEST(BatchVerify, SingleBadEntryIsolated) {
  for (std::size_t bad : {std::size_t{0}, std::size_t{7}, std::size_t{15}}) {
    Batch b = make_honest(16);
    b.proofs[bad] = mutate_proof_blob(b.proofs[bad], 3,
                                      [](Bytes& s) { s.back() ^= 0x01; });
    auto es = b.entries();
    std::vector<char> got;
    vrf().batch_verify(es, got);
    for (std::size_t i = 0; i < es.size(); ++i)
      EXPECT_EQ(got[i], i == bad ? 0 : 1) << "bad=" << bad << " i=" << i;
  }
}

TEST(BatchVerify, PerFieldMutationsMatchSerial) {
  // Each DLEQ field forged individually, plus value/pk/input tampering:
  // the batch must reject exactly what verify() rejects, whatever the
  // failure mode (structural parse, subgroup check, equation, H2 bind).
  using Mutator = std::function<void(Batch&, std::size_t)>;
  const std::vector<Mutator> mutators = {
      [](Batch& b, std::size_t i) {  // Γ forged
        b.proofs[i] = mutate_proof_blob(b.proofs[i], 0,
                                        [](Bytes& g) { g[0] ^= 0x02; });
      },
      [](Batch& b, std::size_t i) {  // a forged
        b.proofs[i] = mutate_proof_blob(b.proofs[i], 1,
                                        [](Bytes& a) { a.back() ^= 0x10; });
      },
      [](Batch& b, std::size_t i) {  // b forged
        b.proofs[i] = mutate_proof_blob(b.proofs[i], 2,
                                        [](Bytes& v) { v.back() ^= 0x10; });
      },
      [](Batch& b, std::size_t i) {  // s forged
        b.proofs[i] = mutate_proof_blob(b.proofs[i], 3,
                                        [](Bytes& s) { s[0] ^= 0x01; });
      },
      [](Batch& b, std::size_t i) { b.values[i][3] ^= 0xff; },  // y forged
      [](Batch& b, std::size_t i) {  // wrong pk (valid group element)
        b.pks[i] = keys()[(i + 1) % keys().size()].pk;
      },
      [](Batch& b, std::size_t i) {  // wrong input
        b.inputs[i].push_back(0x42);
      },
      [](Batch& b, std::size_t i) {  // truncated proof (parse failure)
        b.proofs[i].resize(b.proofs[i].size() / 2);
      },
      [](Batch& b, std::size_t i) {  // garbage proof
        b.proofs[i] = bytes_of("not a proof");
      },
  };
  for (std::size_t m = 0; m < mutators.size(); ++m) {
    Batch b = make_honest(8, 2, /*salt=*/m);
    mutators[m](b, 3);
    SCOPED_TRACE("mutator " + std::to_string(m));
    expect_batch_matches_serial(b);
  }
}

TEST(BatchVerify, FuzzRandomMutationMixesMatchSerial) {
  // Randomized sweep: batch sizes 1..24, 0..k bad entries, random
  // mutation kind per bad entry. Equivalence must hold bit-for-bit.
  Rng rng(404);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t k = 1 + rng.next_below(24);
    Batch b = make_honest(k, 1 + rng.next_below(4),
                          /*salt=*/static_cast<std::uint64_t>(iter) + 100);
    const std::size_t bad = rng.next_below(k + 1);
    for (std::size_t j = 0; j < bad; ++j) {
      const std::size_t i = rng.next_below(k);
      switch (rng.next_below(5)) {
        case 0:
          b.proofs[i] = mutate_proof_blob(
              b.proofs[i], static_cast<int>(rng.next_below(4)),
              [&](Bytes& f) { f[rng.next_below(f.size())] ^= 0x04; });
          break;
        case 1: b.values[i][rng.next_below(b.values[i].size())] ^= 0x20; break;
        case 2: b.pks[i] = keys()[rng.next_below(keys().size())].pk; break;
        case 3: b.inputs[i].push_back(static_cast<std::uint8_t>(iter)); break;
        default: b.proofs[i].clear(); break;
      }
    }
    SCOPED_TRACE("iter " + std::to_string(iter));
    expect_batch_matches_serial(b);
  }
}

TEST(BatchVerify, AttributionHandlesAllBadAndAlternating) {
  Batch all_bad = make_honest(16);
  for (std::size_t i = 0; i < all_bad.size(); ++i)
    all_bad.values[i][0] ^= 0x01;
  expect_batch_matches_serial(all_bad);

  Batch alternating = make_honest(17, 2, /*salt=*/9);
  for (std::size_t i = 0; i < alternating.size(); i += 2)
    alternating.proofs[i] = mutate_proof_blob(
        alternating.proofs[i], 3, [](Bytes& s) { s[1] ^= 0x08; });
  expect_batch_matches_serial(alternating);
}

TEST(BatchVerify, DeterministicAcrossReplaysAndSeeds) {
  Batch b = make_honest(12);
  b.values[5][0] ^= 0x01;
  auto es = b.entries();
  std::vector<char> first, second;
  vrf().batch_verify(es, first);
  vrf().batch_verify(es, second);
  EXPECT_EQ(first, second);

  // A different session seed draws different combiner scalars but must
  // reach the same verdicts — the scalars only randomize soundness.
  DdhVrf reseeded{vrf().group()};
  reseeded.set_batch_seed(0x5eed5eed5eed5eedULL);
  std::vector<char> other_seed;
  reseeded.batch_verify(es, other_seed);
  EXPECT_EQ(first, other_seed);
}

TEST(BatchVerify, FastVrfBatchMatchesSerial) {
  auto registry = KeyRegistry::create_for(6, 21);
  FastVrf fast(registry);
  std::vector<Bytes> inputs, values, proofs;
  std::vector<VrfBatchEntry> es;
  for (std::size_t i = 0; i < 6; ++i) {
    Writer w;
    w.str("fv").u64(i % 2);
    inputs.push_back(w.take());
  }
  for (std::size_t i = 0; i < 6; ++i) {
    VrfOutput out = fast.eval(registry->sk_of(static_cast<ProcessId>(i)),
                              inputs[i]);
    if (i == 4) out.value[0] ^= 0x01;  // one forgery
    values.push_back(std::move(out.value));
    proofs.push_back(std::move(out.proof));
  }
  for (std::size_t i = 0; i < 6; ++i)
    es.push_back(VrfBatchEntry{registry->pk_of(static_cast<ProcessId>(i)),
                               inputs[i], values[i], proofs[i]});
  std::vector<char> got;
  fast.batch_verify(es, got);
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(got[i] != 0,
              fast.verify(es[i].pk, es[i].input, es[i].value, es[i].proof))
        << i;
  }
}

TEST(VerifyMemoTest, CachesPositiveAndNegativeVerdicts) {
  Batch b = make_honest(2);
  b.values[1][0] ^= 0x01;
  auto es = b.entries();

  VerifyMemo memo;
  EXPECT_FALSE(memo.lookup(es[0]).has_value());
  memo.store(es[0], true);
  memo.store(es[1], false);
  ASSERT_TRUE(memo.lookup(es[0]).has_value());
  EXPECT_TRUE(*memo.lookup(es[0]));
  ASSERT_TRUE(memo.lookup(es[1]).has_value());
  EXPECT_FALSE(*memo.lookup(es[1]));
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_GE(memo.hits(), 4u);   // the successful lookups above
  EXPECT_GE(memo.misses(), 1u); // the initial miss
}

TEST(BatchVerifierTest, SerialAndPooledFlushesAreBitIdentical) {
  // Chunked parallel flushes must produce the same verdict vector as a
  // serial flush: chunk boundaries depend only on the miss count, and
  // every chunk's combiner scalars are content-derived.
  Batch b = make_honest(23, 4);
  b.proofs[9] = mutate_proof_blob(b.proofs[9], 3,
                                  [](Bytes& s) { s[0] ^= 0x01; });
  b.values[17][0] ^= 0x01;
  auto es = b.entries();

  auto shared = std::make_shared<const DdhVrf>(vrf().group());
  coin::BatchVerifier::Config serial_cfg;
  serial_cfg.vrf = shared;
  serial_cfg.chunk = 4;
  coin::BatchVerifier serial(serial_cfg);
  std::vector<char> serial_out;
  coin::BatchVerifier::FlushStats serial_stats =
      serial.verify_shares(es, serial_out);

  ThreadPool pool(8);
  coin::BatchVerifier::Config pooled_cfg;
  pooled_cfg.vrf = shared;
  pooled_cfg.chunk = 4;
  pooled_cfg.pool = &pool;
  coin::BatchVerifier pooled(pooled_cfg);
  std::vector<char> pooled_out;
  coin::BatchVerifier::FlushStats pooled_stats =
      pooled.verify_shares(es, pooled_out);

  EXPECT_EQ(serial_out, pooled_out);
  EXPECT_EQ(serial_stats.rejects, pooled_stats.rejects);
  EXPECT_EQ(serial_stats.rejects, 2u);
  EXPECT_EQ(serial_out, serial_verdicts(es));
}

TEST(BatchVerifierTest, MemoAnswersRepeatFlushes) {
  Batch b = make_honest(6);
  b.values[2][0] ^= 0x01;
  auto es = b.entries();

  coin::BatchVerifier::Config cfg;
  cfg.vrf = std::make_shared<const DdhVrf>(vrf().group());
  coin::BatchVerifier bv(cfg);
  std::vector<char> first, second;
  coin::BatchVerifier::FlushStats s1 = bv.verify_shares(es, first);
  EXPECT_EQ(s1.memo_hits, 0u);
  // Same tuples again (a duplicate/replayed broadcast): all memo hits,
  // including the cached negative.
  coin::BatchVerifier::FlushStats s2 = bv.verify_shares(es, second);
  EXPECT_EQ(s2.memo_hits, es.size());
  EXPECT_EQ(first, second);
  EXPECT_EQ(bv.memo().size(), es.size());
}

}  // namespace
}  // namespace coincidence::crypto
