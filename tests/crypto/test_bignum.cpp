#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/rng.h"

namespace coincidence::crypto {
namespace {

TEST(Bignum, ZeroProperties) {
  Bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes_be().empty());
}

TEST(Bignum, FromU64) {
  Bignum v(0x1234);
  EXPECT_EQ(v.to_hex(), "1234");
  EXPECT_EQ(v.low_u64(), 0x1234u);
  EXPECT_EQ(v.bit_length(), 13u);
}

TEST(Bignum, HexRoundTrip) {
  std::string h = "deadbeefcafebabe0123456789abcdef00ff";
  EXPECT_EQ(Bignum::from_hex(h).to_hex(), h);
}

TEST(Bignum, OddLengthHex) {
  EXPECT_EQ(Bignum::from_hex("f").low_u64(), 15u);
  EXPECT_EQ(Bignum::from_hex("abc").low_u64(), 0xabcu);
}

TEST(Bignum, BytesRoundTripWithPadding) {
  Bignum v(0xff);
  Bytes b = v.to_bytes_be(4);
  EXPECT_EQ(b, (Bytes{0, 0, 0, 0xff}));
  EXPECT_EQ(Bignum::from_bytes_be(b), v);
}

TEST(Bignum, LeadingZeroBytesNormalized) {
  Bytes b{0, 0, 1, 2};
  Bignum v = Bignum::from_bytes_be(b);
  EXPECT_EQ(v.to_hex(), "102");
}

TEST(Bignum, Comparisons) {
  Bignum a(5), b(7);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
  Bignum big = Bignum::from_hex("100000000000000000000000000000000");
  EXPECT_TRUE(b < big);
}

TEST(Bignum, AddCarriesAcrossLimbs) {
  Bignum max64 = Bignum::from_hex("ffffffffffffffff");
  Bignum sum = max64 + Bignum(1);
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
}

TEST(Bignum, SubBorrowsAcrossLimbs) {
  Bignum big = Bignum::from_hex("10000000000000000");
  EXPECT_EQ((big - Bignum(1)).to_hex(), "ffffffffffffffff");
}

TEST(Bignum, SubUnderflowThrows) {
  EXPECT_THROW(Bignum(1) - Bignum(2), PreconditionError);
}

TEST(Bignum, MulKnownProduct) {
  Bignum a = Bignum::from_hex("ffffffffffffffff");
  Bignum sq = a * a;
  EXPECT_EQ(sq.to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(Bignum, MulByZero) {
  Bignum a = Bignum::from_hex("123456789");
  EXPECT_TRUE((a * Bignum()).is_zero());
  EXPECT_TRUE((Bignum() * a).is_zero());
}

TEST(Bignum, Shifts) {
  Bignum one(1);
  EXPECT_EQ((one << 64).to_hex(), "10000000000000000");
  EXPECT_EQ(((one << 130) >> 130), one);
  EXPECT_TRUE((one >> 1).is_zero());
  Bignum v = Bignum::from_hex("f0f0");
  EXPECT_EQ((v << 4).to_hex(), "f0f00");
  EXPECT_EQ((v >> 4).to_hex(), "f0f");
}

TEST(Bignum, DivModSmall) {
  auto dm = divmod(Bignum(100), Bignum(7));
  EXPECT_EQ(dm.quotient.low_u64(), 14u);
  EXPECT_EQ(dm.remainder.low_u64(), 2u);
}

TEST(Bignum, DivByZeroThrows) {
  EXPECT_THROW(Bignum(1) / Bignum(), PreconditionError);
  EXPECT_THROW(Bignum(1) % Bignum(), PreconditionError);
}

TEST(Bignum, DivSmallerThanDivisor) {
  auto dm = divmod(Bignum(3), Bignum::from_hex("ffffffffffffffffff"));
  EXPECT_TRUE(dm.quotient.is_zero());
  EXPECT_EQ(dm.remainder.low_u64(), 3u);
}

TEST(Bignum, DivisionIdentityRandomized) {
  // Property: u = q*v + r with r < v, across many random widths.
  Rng rng(12345);
  for (int iter = 0; iter < 300; ++iter) {
    std::size_t ulen = 1 + rng.next_below(40);
    std::size_t vlen = 1 + rng.next_below(ulen);
    Bignum u = Bignum::from_bytes_be(rng.next_bytes(ulen));
    Bignum v = Bignum::from_bytes_be(rng.next_bytes(vlen));
    if (v.is_zero()) continue;
    auto dm = divmod(u, v);
    EXPECT_TRUE(dm.remainder < v);
    EXPECT_EQ(dm.quotient * v + dm.remainder, u);
  }
}

TEST(Bignum, KnuthDAddBackCase) {
  // A divisor crafted so the qhat estimate overshoots and the D6 add-back
  // path executes (top limbs of dividend just below divisor pattern).
  Bignum u = Bignum::from_hex("7fffffffffffffff8000000000000000"
                              "00000000000000000000000000000000");
  Bignum v = Bignum::from_hex("800000000000000000000000000000000001");
  auto dm = divmod(u, v);
  EXPECT_EQ(dm.quotient * v + dm.remainder, u);
  EXPECT_TRUE(dm.remainder < v);
}

TEST(Bignum, ModExpSmallKnown) {
  // 3^7 mod 10 = 2187 mod 10 = 7
  EXPECT_EQ(Bignum::mod_exp(Bignum(3), Bignum(7), Bignum(10)).low_u64(), 7u);
}

TEST(Bignum, ModExpFermat) {
  // a^(p-1) = 1 mod p for prime p = 1000003 and a not divisible by p.
  Bignum p(1000003);
  for (std::uint64_t a : {2ULL, 3ULL, 999999ULL}) {
    EXPECT_EQ(Bignum::mod_exp(Bignum(a), p - Bignum(1), p), Bignum(1));
  }
}

TEST(Bignum, ModExpEdgeCases) {
  EXPECT_EQ(Bignum::mod_exp(Bignum(5), Bignum(), Bignum(7)), Bignum(1));  // e=0
  EXPECT_TRUE(Bignum::mod_exp(Bignum(5), Bignum(3), Bignum(1)).is_zero());  // m=1
  EXPECT_TRUE(Bignum::mod_exp(Bignum(), Bignum(5), Bignum(7)).is_zero());  // 0^e
}

TEST(Bignum, ModInvSmall) {
  // 3 * 5 = 15 = 1 mod 7
  EXPECT_EQ(Bignum::mod_inv(Bignum(3), Bignum(7)), Bignum(5));
}

TEST(Bignum, ModInvRandomized) {
  Rng rng(777);
  Bignum p(1000003);  // prime modulus => everything nonzero invertible
  for (int i = 0; i < 200; ++i) {
    Bignum a(1 + rng.next_below(1000002));
    Bignum inv = Bignum::mod_inv(a, p);
    EXPECT_EQ(Bignum::mul_mod(a, inv, p), Bignum(1));
  }
}

TEST(Bignum, ModInvNotInvertibleThrows) {
  EXPECT_THROW(Bignum::mod_inv(Bignum(4), Bignum(8)), PreconditionError);
}

TEST(Bignum, Gcd) {
  EXPECT_EQ(Bignum::gcd(Bignum(48), Bignum(36)), Bignum(12));
  EXPECT_EQ(Bignum::gcd(Bignum(17), Bignum(13)), Bignum(1));
  EXPECT_EQ(Bignum::gcd(Bignum(0), Bignum(5)), Bignum(5));
}

TEST(Bignum, AddSubModInvariants) {
  Rng rng(99);
  Bignum m = Bignum::from_hex("ffffffffffffffffffffffc5");  // arbitrary modulus
  for (int i = 0; i < 100; ++i) {
    Bignum a = Bignum::from_bytes_be(rng.next_bytes(12)) % m;
    Bignum b = Bignum::from_bytes_be(rng.next_bytes(12)) % m;
    Bignum s = Bignum::add_mod(a, b, m);
    EXPECT_TRUE(s < m);
    EXPECT_EQ(Bignum::sub_mod(s, b, m), a);
  }
}

TEST(Bignum, RingAxiomsRandomized) {
  // (a+b)*c == a*c + b*c ; a*b == b*a ; (a*b)*c == a*(b*c)
  Rng rng(2024);
  for (int i = 0; i < 100; ++i) {
    Bignum a = Bignum::from_bytes_be(rng.next_bytes(1 + rng.next_below(24)));
    Bignum b = Bignum::from_bytes_be(rng.next_bytes(1 + rng.next_below(24)));
    Bignum c = Bignum::from_bytes_be(rng.next_bytes(1 + rng.next_below(24)));
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TEST(Bignum, BitAccess) {
  Bignum v = Bignum::from_hex("5");  // 101b
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_FALSE(v.bit(64));
  EXPECT_FALSE(v.bit(1000));
}

}  // namespace
}  // namespace coincidence::crypto
