#include "crypto/prime.h"

#include <gtest/gtest.h>

namespace coincidence::crypto {
namespace {

TEST(Prime, SmallPrimesAccepted) {
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 7919ULL})
    EXPECT_TRUE(is_probable_prime(Bignum(p))) << p;
}

TEST(Prime, SmallCompositesRejected) {
  for (std::uint64_t c : {0ULL, 1ULL, 4ULL, 9ULL, 100ULL, 7917ULL})
    EXPECT_FALSE(is_probable_prime(Bignum(c))) << c;
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller–Rabin.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 41041ULL, 825265ULL})
    EXPECT_FALSE(is_probable_prime(Bignum(c))) << c;
}

TEST(Prime, LargeKnownPrime) {
  // 2^89 - 1 is a Mersenne prime.
  Bignum m89 = (Bignum(1) << 89) - Bignum(1);
  EXPECT_TRUE(is_probable_prime(m89));
}

TEST(Prime, LargeKnownComposite) {
  // 2^83 - 1 = 167 * ... is composite.
  Bignum m83 = (Bignum(1) << 83) - Bignum(1);
  EXPECT_FALSE(is_probable_prime(m83));
}

TEST(Prime, ProductOfTwoPrimesRejected) {
  Bignum p(1000003), q(1000033);
  EXPECT_FALSE(is_probable_prime(p * q));
}

TEST(Prime, GenerateSafePrime64) {
  SafePrime sp = generate_safe_prime(64, 1);
  EXPECT_EQ(sp.p.bit_length(), 64u);
  EXPECT_EQ(sp.p, (sp.q << 1) + Bignum(1));
  EXPECT_TRUE(is_probable_prime(sp.p));
  EXPECT_TRUE(is_probable_prime(sp.q));
}

TEST(Prime, GenerateSafePrime128Deterministic) {
  SafePrime a = generate_safe_prime(128, 42);
  SafePrime b = generate_safe_prime(128, 42);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.p.bit_length(), 128u);
}

TEST(Prime, GenerateSafePrimeDifferentSeeds) {
  SafePrime a = generate_safe_prime(64, 1);
  SafePrime b = generate_safe_prime(64, 2);
  EXPECT_NE(a.p, b.p);
}

TEST(Prime, Rfc3526IsSafePrime) {
  const Bignum& p = rfc3526_prime_1536();
  EXPECT_EQ(p.bit_length(), 1536u);
  EXPECT_TRUE(is_probable_prime(p, 4));
  Bignum q = (p - Bignum(1)) >> 1;
  EXPECT_TRUE(is_probable_prime(q, 4));
}

}  // namespace
}  // namespace coincidence::crypto
