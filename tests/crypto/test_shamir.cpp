#include "crypto/shamir.h"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.h"

namespace coincidence::crypto {
namespace {

TEST(Field61, ReduceIdentities) {
  EXPECT_EQ(Field61::reduce(0), 0u);
  EXPECT_EQ(Field61::reduce(Field61::kP), 0u);
  EXPECT_EQ(Field61::reduce(Field61::kP + 5), 5u);
  EXPECT_EQ(Field61::reduce(Field61::kP - 1), Field61::kP - 1);
}

TEST(Field61, AddSubInverse) {
  std::uint64_t a = 123456789, b = Field61::kP - 5;
  EXPECT_EQ(Field61::sub(Field61::add(a, b), b), a);
  EXPECT_EQ(Field61::sub(0, 1), Field61::kP - 1);
}

TEST(Field61, MulKnown) {
  EXPECT_EQ(Field61::mul(3, 7), 21u);
  // (p-1)^2 mod p = 1
  EXPECT_EQ(Field61::mul(Field61::kP - 1, Field61::kP - 1), 1u);
}

TEST(Field61, PowFermat) {
  for (std::uint64_t a : {2ULL, 3ULL, 123456789ULL})
    EXPECT_EQ(Field61::pow(a, Field61::kP - 1), 1u) << a;
}

TEST(Field61, InvMultipliesToOne) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t a = 1 + rng.next_below(Field61::kP - 1);
    EXPECT_EQ(Field61::mul(a, Field61::inv(a)), 1u);
  }
}

TEST(Field61, InvZeroThrows) {
  EXPECT_THROW(Field61::inv(0), PreconditionError);
  EXPECT_THROW(Field61::inv(Field61::kP), PreconditionError);
}

TEST(Shamir, ShareAndReconstructExactThreshold) {
  Rng rng(1);
  std::uint64_t secret = 0xdeadbeef;
  auto shares = shamir_share(secret, 7, 3, rng);
  ASSERT_EQ(shares.size(), 7u);
  std::vector<Share> subset(shares.begin(), shares.begin() + 4);  // t+1 = 4
  EXPECT_EQ(shamir_reconstruct(subset), secret);
}

TEST(Shamir, AnySubsetOfThresholdSizeWorks) {
  Rng rng(2);
  std::uint64_t secret = 42;
  auto shares = shamir_share(secret, 6, 2, rng);
  // every 3-subset of 6 shares reconstructs
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i + 1; j < 6; ++j)
      for (std::size_t k = j + 1; k < 6; ++k) {
        std::vector<Share> sub{shares[i], shares[j], shares[k]};
        EXPECT_EQ(shamir_reconstruct(sub), secret);
      }
}

TEST(Shamir, AllSharesAlsoReconstruct) {
  Rng rng(3);
  auto shares = shamir_share(777, 5, 2, rng);
  EXPECT_EQ(shamir_reconstruct(shares), 777u);
}

TEST(Shamir, BelowThresholdRevealsNothing) {
  // With t shares the polynomial is underdetermined: reconstructing from
  // t points (pretending threshold was t-1) must NOT yield the secret in
  // general. We check it statistically over random secrets.
  Rng rng(4);
  int accidental_hits = 0;
  for (int iter = 0; iter < 50; ++iter) {
    std::uint64_t secret = rng.next_below(Field61::kP);
    auto shares = shamir_share(secret, 5, 2, rng);
    std::vector<Share> too_few(shares.begin(), shares.begin() + 2);
    if (shamir_reconstruct(too_few) == secret) ++accidental_hits;
  }
  EXPECT_LE(accidental_hits, 1);
}

TEST(Shamir, ZeroSecret) {
  Rng rng(5);
  auto shares = shamir_share(0, 4, 1, rng);
  std::vector<Share> sub(shares.begin(), shares.begin() + 2);
  EXPECT_EQ(shamir_reconstruct(sub), 0u);
}

TEST(Shamir, ThresholdZeroIsReplication) {
  Rng rng(6);
  auto shares = shamir_share(99, 3, 0, rng);
  for (const auto& s : shares) EXPECT_EQ(s.y, 99u);
}

TEST(Shamir, RejectsBadParameters) {
  Rng rng(7);
  EXPECT_THROW(shamir_share(Field61::kP, 3, 1, rng), PreconditionError);
  EXPECT_THROW(shamir_share(1, 3, 3, rng), PreconditionError);
}

TEST(Shamir, RejectsDuplicateShares) {
  Rng rng(8);
  auto shares = shamir_share(5, 3, 1, rng);
  std::vector<Share> dup{shares[0], shares[0]};
  EXPECT_THROW(shamir_reconstruct(dup), PreconditionError);
}

TEST(Shamir, RejectsEmpty) {
  EXPECT_THROW(shamir_reconstruct({}), PreconditionError);
}

TEST(Shamir, CorruptedShareChangesResult) {
  Rng rng(9);
  std::uint64_t secret = 31415926;
  auto shares = shamir_share(secret, 4, 1, rng);
  std::vector<Share> sub{shares[0], shares[1]};
  sub[1].y = Field61::add(sub[1].y, 1);
  EXPECT_NE(shamir_reconstruct(sub), secret);
}

}  // namespace
}  // namespace coincidence::crypto
