#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include <string>

#include "common/errors.h"

namespace coincidence::crypto {
namespace {

std::vector<Bytes> make_leaves(std::size_t count) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < count; ++i)
    leaves.push_back(bytes_of("leaf-" + std::to_string(i)));
  return leaves;
}

TEST(Merkle, BranchVerifiesForEveryLeafAndCount) {
  // Odd widths exercise the promotion schedule at every level.
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 48u, 255u}) {
    const auto leaves = make_leaves(count);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < count; ++i) {
      const auto branch = tree.branch(i);
      EXPECT_TRUE(MerkleTree::verify(tree.root(), count, i, leaves[i],
                                     branch))
          << "count=" << count << " i=" << i;
    }
  }
}

TEST(Merkle, SingleLeafTreeHasEmptyBranch) {
  MerkleTree tree({bytes_of("only")});
  EXPECT_TRUE(tree.branch(0).empty());
  EXPECT_EQ(tree.root(), merkle_leaf(bytes_of("only")));
}

TEST(Merkle, TamperedLeafOrBranchRejected) {
  const auto leaves = make_leaves(7);
  MerkleTree tree(leaves);
  const auto branch = tree.branch(3);

  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 7, 3, bytes_of("evil"), branch));
  // Wrong position for a correct leaf.
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 7, 2, leaves[3], branch));
  // Flipped digest inside the path.
  auto bad = branch;
  bad[1][0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 7, 3, leaves[3], bad));
  // Truncated and padded paths.
  auto short_branch = branch;
  short_branch.pop_back();
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 7, 3, leaves[3], short_branch));
  auto long_branch = branch;
  long_branch.push_back(Digest{});
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 7, 3, leaves[3], long_branch));
  // Out-of-range index and zero count.
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 7, 7, leaves[3], branch));
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 0, 0, leaves[3], branch));
}

TEST(Merkle, LeafNodeDomainsAreSeparated) {
  // A two-leaf tree's root must not equal the leaf hash of the
  // concatenated children — 0x00/0x01 prefixes keep the domains apart.
  const auto leaves = make_leaves(2);
  MerkleTree tree(leaves);
  Bytes cat;
  const Digest l0 = merkle_leaf(leaves[0]);
  const Digest l1 = merkle_leaf(leaves[1]);
  append(cat, BytesView(l0.data(), l0.size()));
  append(cat, BytesView(l1.data(), l1.size()));
  EXPECT_NE(tree.root(), merkle_leaf(cat));
}

TEST(Merkle, DistinctLeafSetsGetDistinctRoots) {
  MerkleTree a(make_leaves(5));
  auto mutated = make_leaves(5);
  mutated[4] = bytes_of("leaf-4!");
  MerkleTree b(mutated);
  EXPECT_NE(a.root(), b.root());
  EXPECT_THROW(a.branch(5), PreconditionError);
}

}  // namespace
}  // namespace coincidence::crypto
