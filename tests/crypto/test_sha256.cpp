#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace coincidence::crypto {
namespace {

std::string hex_digest(BytesView data) {
  Digest d = sha256(data);
  return to_hex(BytesView(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(bytes_of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_digest(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  Digest d = h.finish();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding must spill into a second block.
  Bytes msg(64, 'x');
  Digest once = sha256(msg);
  Sha256 split;
  split.update(BytesView(msg.data(), 13));
  split.update(BytesView(msg.data() + 13, 51));
  EXPECT_EQ(once, split.finish());
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes leaves exactly one byte for 0x80 pad; 56 forces a new block.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    Bytes msg(len, 'q');
    Digest once = sha256(msg);
    Sha256 inc;
    for (std::size_t i = 0; i < len; ++i)
      inc.update(BytesView(msg.data() + i, 1));
    EXPECT_EQ(once, inc.finish()) << "len=" << len;
  }
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  h.update(BytesView(msg.data(), 10));
  h.update(BytesView(msg.data() + 10, msg.size() - 10));
  EXPECT_EQ(h.finish(), sha256(msg));
}

TEST(Sha256, FinishTwiceThrows) {
  Sha256 h;
  h.update(bytes_of("x"));
  h.finish();
  EXPECT_THROW(h.finish(), PreconditionError);
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.finish();
  EXPECT_THROW(h.update(bytes_of("x")), PreconditionError);
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256(bytes_of("a")), sha256(bytes_of("b")));
  EXPECT_NE(sha256(bytes_of("")), sha256(Bytes{0}));
}

TEST(Sha256, BytesHelperMatches) {
  Digest d = sha256(bytes_of("abc"));
  Bytes b = sha256_bytes(bytes_of("abc"));
  EXPECT_TRUE(std::equal(d.begin(), d.end(), b.begin(), b.end()));
}

}  // namespace
}  // namespace coincidence::crypto
