#include "crypto/reed_solomon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/errors.h"
#include "common/rng.h"

namespace coincidence::crypto {
namespace {

Bytes random_value(Rng& rng, std::size_t size) {
  Bytes v(size);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  return v;
}

TEST(Gf256, MulInvRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, gf256::inv(x)), 1) << a;
  }
  EXPECT_EQ(gf256::mul(0, 37), 0);
  EXPECT_EQ(gf256::mul(37, 0), 0);
  EXPECT_THROW(gf256::inv(0), PreconditionError);
}

TEST(Gf256, MulMatchesSchoolbook) {
  // Carry-less multiply reduced mod x^8+x^4+x^3+x^2+1, spot-checked
  // against the table path on a pseudo-random sample.
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint16_t acc = 0;
    std::uint16_t aa = a;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) acc ^= static_cast<std::uint16_t>(aa << i);
    }
    for (int i = 15; i >= 8; --i)
      if (acc & (1 << i)) acc ^= static_cast<std::uint16_t>(0x11d << (i - 8));
    return static_cast<std::uint8_t>(acc);
  };
  Rng rng(7);
  for (int t = 0; t < 4096; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    const auto b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    ASSERT_EQ(gf256::mul(a, b), slow_mul(a, b))
        << int(a) << "*" << int(b);
  }
}

TEST(ReedSolomon, SystematicPrefixIsTheValue) {
  ReedSolomon rs(7, 3);
  const Bytes value = bytes_of("systematic-check!");
  const auto frags = rs.encode(value);
  ASSERT_EQ(frags.size(), 7u);
  const std::size_t len = rs.fragment_size(value.size());
  Bytes joined;
  for (std::size_t m = 0; m < 3; ++m) {
    ASSERT_EQ(frags[m].size(), len);
    append(joined, frags[m]);
  }
  joined.resize(value.size());
  EXPECT_EQ(joined, value);
}

TEST(ReedSolomon, RoundTripAcrossGrids) {
  // (n, f) grids with k = f+1, value sizes straddling the fragment
  // boundary cases (empty, < k, exact multiple, ragged tail).
  const std::size_t grid[][2] = {{4, 1}, {7, 2}, {16, 5}, {48, 15}, {255, 84}};
  Rng rng(11);
  for (const auto& [n, f] : grid) {
    const std::size_t k = f + 1;
    ReedSolomon rs(n, k);
    for (std::size_t size : {std::size_t{0}, std::size_t{1}, k - 1, k, k + 1,
                             8 * k, 8 * k + 3, std::size_t{257}}) {
      const Bytes value = random_value(rng, size);
      const auto frags = rs.encode(value);
      ASSERT_EQ(frags.size(), n);
      // Decode from the k lexicographically-first fragments, the k last
      // (parity-heavy), and a random k-subset.
      std::vector<std::size_t> idx(n);
      std::iota(idx.begin(), idx.end(), 0u);
      for (int pick = 0; pick < 3; ++pick) {
        std::vector<std::size_t> chosen;
        if (pick == 0) {
          chosen.assign(idx.begin(), idx.begin() + static_cast<long>(k));
        } else if (pick == 1) {
          chosen.assign(idx.end() - static_cast<long>(k), idx.end());
        } else {
          std::vector<std::size_t> pool = idx;
          for (std::size_t s = 0; s < k; ++s) {
            const std::size_t r =
                s + static_cast<std::size_t>(rng.next_u64() %
                                             (pool.size() - s));
            std::swap(pool[s], pool[r]);
            chosen.push_back(pool[s]);
          }
        }
        std::vector<std::pair<std::size_t, Bytes>> subset;
        for (std::size_t i : chosen) subset.emplace_back(i, frags[i]);
        EXPECT_EQ(rs.decode(subset, size), value)
            << "n=" << n << " k=" << k << " size=" << size
            << " pick=" << pick;
      }
    }
  }
}

TEST(ReedSolomon, EveryKSubsetDecodesSmall) {
  // Exhaustive over all C(6,3) erasure patterns.
  ReedSolomon rs(6, 3);
  const Bytes value = bytes_of("exhaustive erasure patterns");
  const auto frags = rs.encode(value);
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a + 1; b < 6; ++b)
      for (std::size_t c = b + 1; c < 6; ++c) {
        std::vector<std::pair<std::size_t, Bytes>> subset = {
            {a, frags[a]}, {b, frags[b]}, {c, frags[c]}};
        EXPECT_EQ(rs.decode(subset, value.size()), value)
            << a << "," << b << "," << c;
      }
}

TEST(ReedSolomon, CorruptedFragmentChangesDecode) {
  // RS itself does not detect corruption (that is the Merkle layer's
  // job): a flipped byte in a used fragment must surface as a different
  // value, never as a silent pass-through of the original.
  ReedSolomon rs(7, 3);
  const Bytes value = bytes_of("integrity is the tree's job");
  auto frags = rs.encode(value);
  frags[4][0] ^= 0x5a;
  std::vector<std::pair<std::size_t, Bytes>> subset = {
      {1, frags[1]}, {4, frags[4]}, {6, frags[6]}};
  EXPECT_NE(rs.decode(subset, value.size()), value);
}

TEST(ReedSolomon, DecodeRejectsMalformedInput) {
  ReedSolomon rs(7, 3);
  const Bytes value = bytes_of("abcdef");
  const auto frags = rs.encode(value);
  using Subset = std::vector<std::pair<std::size_t, Bytes>>;
  Subset too_few = {{0, frags[0]}, {1, frags[1]}};
  EXPECT_THROW(rs.decode(too_few, value.size()), CodecError);
  Subset dup = {{0, frags[0]}, {0, frags[0]}, {1, frags[1]}};
  EXPECT_THROW(rs.decode(dup, value.size()), CodecError);
  Subset oob = {{0, frags[0]}, {1, frags[1]}, {7, frags[2]}};
  EXPECT_THROW(rs.decode(oob, value.size()), CodecError);
  Subset short_frag = {{0, frags[0]}, {1, frags[1]}, {2, Bytes{1}}};
  EXPECT_THROW(rs.decode(short_frag, value.size()), CodecError);
}

TEST(ReedSolomon, ConstructorEnforcesFieldLimits) {
  EXPECT_THROW(ReedSolomon(256, 8), PreconditionError);
  EXPECT_THROW(ReedSolomon(4, 0), PreconditionError);
  EXPECT_THROW(ReedSolomon(4, 5), PreconditionError);
  ReedSolomon ok(255, 1);  // degenerate repetition code is legal
  const auto frags = ok.encode(bytes_of("x"));
  for (const auto& f : frags) EXPECT_EQ(f, bytes_of("x"));
}

}  // namespace
}  // namespace coincidence::crypto
