#include "crypto/signer.h"

#include <gtest/gtest.h>

namespace coincidence::crypto {
namespace {

class SignerTest : public ::testing::Test {
 protected:
  SignerTest() : registry_(KeyRegistry::create_for(4, 55)), signer_(registry_) {}

  std::shared_ptr<KeyRegistry> registry_;
  Signer signer_;
};

TEST_F(SignerTest, SignVerifyRoundTrip) {
  Bytes sig = signer_.sign(0, bytes_of("echo,1"));
  EXPECT_TRUE(signer_.verify(0, bytes_of("echo,1"), sig));
}

TEST_F(SignerTest, WrongSignerRejected) {
  Bytes sig = signer_.sign(0, bytes_of("m"));
  EXPECT_FALSE(signer_.verify(1, bytes_of("m"), sig));
}

TEST_F(SignerTest, WrongMessageRejected) {
  Bytes sig = signer_.sign(0, bytes_of("m"));
  EXPECT_FALSE(signer_.verify(0, bytes_of("m2"), sig));
}

TEST_F(SignerTest, TamperedSignatureRejected) {
  Bytes sig = signer_.sign(0, bytes_of("m"));
  sig[0] ^= 1;
  EXPECT_FALSE(signer_.verify(0, bytes_of("m"), sig));
}

TEST_F(SignerTest, UnknownSignerRejectedNotThrow) {
  EXPECT_FALSE(signer_.verify(99, bytes_of("m"), Bytes(32, 0)));
}

TEST_F(SignerTest, SignatureSizeMatchesWordAccounting) {
  EXPECT_EQ(signer_.sign(0, bytes_of("m")).size(), Signer::kSignatureSize);
}

TEST_F(SignerTest, DeterministicPerSignerMessage) {
  EXPECT_EQ(signer_.sign(2, bytes_of("m")), signer_.sign(2, bytes_of("m")));
  EXPECT_NE(signer_.sign(2, bytes_of("m")), signer_.sign(3, bytes_of("m")));
}

}  // namespace
}  // namespace coincidence::crypto
