// Randomized cross-checks of the Montgomery fast path against the
// division-based reference arithmetic: mont_mul vs mul_mod, windowed
// Montgomery mod_exp vs mod_exp_ref, Straus/Shamir dual_exp vs the
// product of two reference ladders, the fixed-base comb vs mod_exp_ref,
// and Jacobi vs the Euler criterion — over the RFC 3526 modulus and
// freshly generated small safe primes, including the edge operands
// (0, 1, m−1, values ≥ m) where reduction bugs hide.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/errors.h"
#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/prime.h"

namespace coincidence::crypto {
namespace {

Bignum random_below(Rng& rng, const Bignum& m) {
  return Bignum::from_bytes_be(rng.next_bytes(m.to_bytes_be().size() + 8)) % m;
}

// The moduli under test: the production 1536-bit prime plus small safe
// primes of odd limb counts so the REDC loops see k = 2, 3, 4 word
// shapes, not just the 24-limb production shape.
const std::vector<Bignum>& test_moduli() {
  static const std::vector<Bignum> ms = [] {
    std::vector<Bignum> v;
    v.push_back(rfc3526_prime_1536());
    v.push_back(generate_safe_prime(80, 11).p);
    v.push_back(generate_safe_prime(130, 12).p);
    v.push_back(generate_safe_prime(200, 13).p);
    return v;
  }();
  return ms;
}

TEST(Montgomery, RejectsEvenOrTrivialModulus) {
  EXPECT_THROW(MontgomeryCtx(Bignum(0)), PreconditionError);
  EXPECT_THROW(MontgomeryCtx(Bignum(1)), PreconditionError);
  EXPECT_THROW(MontgomeryCtx(Bignum(1) << 64), PreconditionError);
}

TEST(Montgomery, RoundTripAndIdentity) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Rng rng(401);
    for (int i = 0; i < 50; ++i) {
      Bignum a = random_below(rng, m);
      EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
    }
    // Montgomery form of 1 behaves as the multiplicative identity.
    Bignum one_m = ctx.to_mont(Bignum(1));
    Bignum x = ctx.to_mont(random_below(rng, m));
    EXPECT_EQ(ctx.mont_mul(x, one_m), x);
  }
}

TEST(Montgomery, MontMulMatchesMulMod) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Rng rng(402);
    for (int i = 0; i < 100; ++i) {
      Bignum a = random_below(rng, m);
      Bignum b = random_below(rng, m);
      Bignum am = ctx.to_mont(a), bm = ctx.to_mont(b);
      EXPECT_EQ(ctx.from_mont(ctx.mont_mul(am, bm)), Bignum::mul_mod(a, b, m));
      EXPECT_EQ(ctx.from_mont(ctx.mont_sqr(am)), Bignum::mul_mod(a, a, m));
    }
  }
}

TEST(Montgomery, MontMulEdgeOperands) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Bignum m1 = m - Bignum(1);
    const Bignum cases[] = {Bignum(0), Bignum(1), Bignum(2), m1};
    for (const Bignum& a : cases) {
      for (const Bignum& b : cases) {
        Bignum got =
            ctx.from_mont(ctx.mont_mul(ctx.to_mont(a), ctx.to_mont(b)));
        EXPECT_EQ(got, Bignum::mul_mod(a, b, m));
      }
      EXPECT_EQ(ctx.from_mont(ctx.mont_sqr(ctx.to_mont(a))),
                Bignum::mul_mod(a, a, m));
    }
    // (m−1)² = 1 mod m — the largest reduced operands, worst-case carries.
    EXPECT_EQ(ctx.from_mont(ctx.mont_sqr(ctx.to_mont(m1))), Bignum(1));
  }
}

TEST(Montgomery, ModExpMatchesReference) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Rng rng(403);
    for (int i = 0; i < 25; ++i) {
      Bignum base = random_below(rng, m);
      Bignum exp = random_below(rng, m);
      EXPECT_EQ(ctx.mod_exp(base, exp), Bignum::mod_exp_ref(base, exp, m));
    }
  }
}

TEST(Montgomery, ModExpEdgeCases) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Bignum m1 = m - Bignum(1);
    // 0^0 = 1 by repo convention; 0^e = 0; x^0 = 1; x^1 = x.
    EXPECT_EQ(ctx.mod_exp(Bignum(0), Bignum(0)), Bignum(1));
    EXPECT_EQ(ctx.mod_exp(Bignum(0), m1), Bignum(0));
    EXPECT_EQ(ctx.mod_exp(m1, Bignum(0)), Bignum(1));
    EXPECT_EQ(ctx.mod_exp(m1, Bignum(1)), m1);
    // Base ≥ m must be reduced first, matching the reference ladder.
    Bignum big = m + m1;
    Rng rng(404);
    Bignum e = random_below(rng, m);
    EXPECT_EQ(ctx.mod_exp(big, e), Bignum::mod_exp_ref(big, e, m));
    // Fermat: a^(m−1) = 1 for prime m, gcd(a, m) = 1.
    EXPECT_EQ(ctx.mod_exp(Bignum(2), m1), Bignum(1));
  }
}

TEST(Montgomery, DispatcherAgreesWithReference) {
  // Bignum::mod_exp routes odd multi-limb moduli with long exponents to
  // the Montgomery path — both paths must be indistinguishable, and the
  // even-modulus case must still work (reference only).
  Rng rng(405);
  Bignum m = generate_safe_prime(130, 21).p;
  for (int i = 0; i < 10; ++i) {
    Bignum base = random_below(rng, m);
    Bignum exp = random_below(rng, m);
    EXPECT_EQ(Bignum::mod_exp(base, exp, m),
              Bignum::mod_exp_ref(base, exp, m));
  }
  Bignum even = m - Bignum(1);
  Bignum base = random_below(rng, even);
  EXPECT_EQ(Bignum::mod_exp(base, Bignum(12345), even),
            Bignum::mod_exp_ref(base, Bignum(12345), even));
}

TEST(Montgomery, DualExpMatchesProductOfReferences) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Rng rng(406);
    for (int i = 0; i < 20; ++i) {
      Bignum a = random_below(rng, m);
      Bignum b = random_below(rng, m);
      Bignum ea = random_below(rng, m);
      Bignum eb = random_below(rng, m);
      Bignum want = Bignum::mul_mod(Bignum::mod_exp_ref(a, ea, m),
                                    Bignum::mod_exp_ref(b, eb, m), m);
      EXPECT_EQ(ctx.dual_exp(a, ea, b, eb), want);
    }
  }
}

TEST(Montgomery, DualExpEdgeExponents) {
  Bignum m = generate_safe_prime(130, 22).p;
  MontgomeryCtx ctx(m);
  Rng rng(407);
  Bignum a = random_below(rng, m);
  Bignum b = random_below(rng, m);
  Bignum e = random_below(rng, m);
  Bignum m1 = m - Bignum(1);
  // Zero exponents on either side, both sides, and mismatched lengths.
  EXPECT_EQ(ctx.dual_exp(a, Bignum(0), b, Bignum(0)), Bignum(1));
  EXPECT_EQ(ctx.dual_exp(a, e, b, Bignum(0)), Bignum::mod_exp_ref(a, e, m));
  EXPECT_EQ(ctx.dual_exp(a, Bignum(0), b, e), Bignum::mod_exp_ref(b, e, m));
  EXPECT_EQ(ctx.dual_exp(a, Bignum(1), b, Bignum(1)),
            Bignum::mul_mod(a, b, m));
  Bignum want = Bignum::mul_mod(Bignum::mod_exp_ref(a, m1, m),
                                Bignum::mod_exp_ref(b, Bignum(3), m), m);
  EXPECT_EQ(ctx.dual_exp(a, m1, b, Bignum(3)), want);
  // Unreduced bases.
  EXPECT_EQ(ctx.dual_exp(a + m, e, b + m, e),
            Bignum::mul_mod(Bignum::mod_exp_ref(a, e, m),
                            Bignum::mod_exp_ref(b, e, m), m));
}

TEST(Montgomery, CombTableMatchesReference) {
  for (const Bignum& m : test_moduli()) {
    auto ctx = std::make_shared<const MontgomeryCtx>(m);
    CombTable comb(ctx, Bignum(4), m.bit_length());
    Rng rng(408);
    for (int i = 0; i < 20; ++i) {
      Bignum e = random_below(rng, m);
      EXPECT_EQ(comb.exp(e), Bignum::mod_exp_ref(Bignum(4), e, m));
    }
    EXPECT_EQ(comb.exp(Bignum(0)), Bignum(1));
    EXPECT_EQ(comb.exp(Bignum(1)), Bignum(4));
    EXPECT_EQ(comb.exp(m - Bignum(1)),
              Bignum::mod_exp_ref(Bignum(4), m - Bignum(1), m));
    // Exponents beyond the table's max_exp_bits fall back to ctx mod_exp.
    Bignum huge = (Bignum(1) << (m.bit_length() + 13)) + Bignum(77);
    EXPECT_EQ(comb.exp(huge), Bignum::mod_exp_ref(Bignum(4), huge, m));
  }
}

TEST(Montgomery, MultiExpMatchesProductOfReferenceLadders) {
  // Pippenger vs Π mod_exp_ref over every term-count regime: the Straus
  // fallback (< 8 terms), the window-size breakpoints, and mixed-width
  // exponents (the batch path mixes 128-bit combiners with full-width
  // sums). k = 0 must yield the empty product.
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Rng rng(410);
    for (std::size_t k : {0u, 1u, 2u, 3u, 7u, 8u, 20u, 40u}) {
      std::vector<MultiExpTerm> terms;
      Bignum want(1);
      for (std::size_t i = 0; i < k; ++i) {
        Bignum base = random_below(rng, m);
        // Mixed widths: short 64-bit, ~128-bit, and full-width exponents.
        Bignum exp;
        switch (i % 3) {
          case 0: exp = Bignum(rng.next_u64()); break;
          case 1: exp = Bignum::from_bytes_be(rng.next_bytes(16)); break;
          default: exp = random_below(rng, m); break;
        }
        want = Bignum::mul_mod(want, Bignum::mod_exp_ref(base, exp, m), m);
        terms.push_back(MultiExpTerm{std::move(base), std::move(exp)});
      }
      EXPECT_EQ(ctx.multi_exp(terms), want)
          << "m bits=" << m.bit_length() << " k=" << k;
    }
  }
}

TEST(Montgomery, MultiExpEdgeExponents) {
  for (const Bignum& m : test_moduli()) {
    MontgomeryCtx ctx(m);
    Rng rng(411);
    Bignum a = random_below(rng, m);
    Bignum b = random_below(rng, m);
    // All-zero exponents: the empty product again.
    std::vector<MultiExpTerm> zeros;
    for (int i = 0; i < 10; ++i)
      zeros.push_back(MultiExpTerm{random_below(rng, m), Bignum(0)});
    EXPECT_EQ(ctx.multi_exp(zeros), Bignum(1));
    // A zero exponent mixed into a live batch contributes nothing.
    std::vector<MultiExpTerm> mixed;
    mixed.push_back(MultiExpTerm{a, Bignum(3)});
    for (int i = 0; i < 12; ++i)
      mixed.push_back(MultiExpTerm{random_below(rng, m), Bignum(0)});
    mixed.push_back(MultiExpTerm{b, Bignum(1)});
    Bignum want = Bignum::mul_mod(Bignum::mod_exp_ref(a, Bignum(3), m), b, m);
    EXPECT_EQ(ctx.multi_exp(mixed), want);
    // Unreduced bases reduce like everywhere else in the ctx API.
    std::vector<MultiExpTerm> unreduced;
    for (int i = 0; i < 9; ++i)
      unreduced.push_back(MultiExpTerm{a + m, Bignum(2)});
    EXPECT_EQ(ctx.multi_exp(unreduced),
              Bignum::mod_exp_ref(a, Bignum(18), m));
  }
}

TEST(Montgomery, JacobiMatchesEulerCriterion) {
  for (const Bignum& m : test_moduli()) {
    if (m.bit_length() > 256) continue;  // Euler oracle cost
    Bignum q = (m - Bignum(1)) >> 1;
    Rng rng(409);
    for (int i = 0; i < 40; ++i) {
      Bignum a = random_below(rng, m);
      int j = Bignum::jacobi(a, m);
      if (a.is_zero()) {
        EXPECT_EQ(j, 0);
        continue;
      }
      // For prime m: (a/m) = a^((m−1)/2) mod m, mapping m−1 ↦ −1.
      Bignum euler = Bignum::mod_exp_ref(a, q, m);
      int want = euler == Bignum(1) ? 1 : -1;
      EXPECT_EQ(j, want) << "a=" << a.to_hex();
    }
    EXPECT_EQ(Bignum::jacobi(Bignum(0), m), 0);
    EXPECT_EQ(Bignum::jacobi(Bignum(1), m), 1);
    // Unreduced argument: (a/m) depends only on a mod m.
    Bignum a = random_below(rng, m);
    EXPECT_EQ(Bignum::jacobi(a + m, m), Bignum::jacobi(a, m));
  }
}

}  // namespace
}  // namespace coincidence::crypto
