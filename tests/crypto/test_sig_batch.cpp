// Batched + memoized signature verification (the approver ok-path
// tentpole): Signer::batch_verify must agree entry-for-entry with the
// single-shot verify() oracle, and SigMemo must cache verdicts by the
// FULL (signer, message, sig) triple — a forged signature caches its own
// negative verdict without poisoning the honest pair, because the honest
// signature is a different key.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coin/verify_queue.h"
#include "crypto/fast_vrf.h"
#include "crypto/key_registry.h"
#include "crypto/sig_memo.h"
#include "crypto/signer.h"

namespace coincidence::crypto {
namespace {

class SigBatchTest : public ::testing::Test {
 protected:
  SigBatchTest() : registry_(KeyRegistry::create_for(8, 77)), signer_(registry_) {}

  SigBatchEntry entry(ProcessId id, const Bytes& msg, const Bytes& sig) {
    return SigBatchEntry{id, BytesView(msg), BytesView(sig)};
  }

  std::shared_ptr<KeyRegistry> registry_;
  Signer signer_;
};

TEST_F(SigBatchTest, EmptyBatchProducesEmptyOutput) {
  std::vector<char> out(3, 1);  // stale garbage must be cleared
  signer_.batch_verify({}, out);
  EXPECT_TRUE(out.empty());
}

// The oracle law: out[i] == verify(entries[i]) for every i, across a
// batch mixing valid, tampered, wrong-signer and unknown-signer entries.
TEST_F(SigBatchTest, BatchVerdictsMatchSingleVerifyOracle) {
  Bytes m1 = bytes_of("ba|echo|0");
  Bytes m2 = bytes_of("ba|echo|1");
  Bytes s1 = signer_.sign(1, m1);
  Bytes s2 = signer_.sign(2, m2);
  Bytes tampered = s1;
  tampered[5] ^= 0x40;
  Bytes junk(Signer::kSignatureSize, 0xab);

  std::vector<SigBatchEntry> es = {
      entry(1, m1, s1),        // valid
      entry(2, m1, s1),        // wrong signer
      entry(1, m2, s1),        // wrong message
      entry(1, m1, tampered),  // tampered signature
      entry(99, m1, junk),     // unknown signer
      entry(2, m2, s2),        // valid, different (signer, message)
  };
  std::vector<char> out;
  signer_.batch_verify(es, out);
  ASSERT_EQ(out.size(), es.size());
  for (std::size_t i = 0; i < es.size(); ++i)
    EXPECT_EQ(out[i] != 0, signer_.verify(es[i].signer, es[i].message, es[i].sig))
        << "entry " << i;
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(out[4], 0);
  EXPECT_EQ(out[5], 1);
}

// The approver's W-sweep shape: many signers, ONE message. The re-tag
// amortization (prefix recomputed only when the message changes) must
// not change verdicts.
TEST_F(SigBatchTest, SameMessageManySignersSweep) {
  Bytes msg = bytes_of("ba[0]|echo|1");
  std::vector<Bytes> sigs;
  std::vector<SigBatchEntry> es;
  for (ProcessId id = 0; id < 8; ++id) sigs.push_back(signer_.sign(id, msg));
  for (ProcessId id = 0; id < 8; ++id) es.push_back(entry(id, msg, sigs[id]));
  es.push_back(entry(3, msg, sigs[4]));  // cross-wired: must reject
  std::vector<char> out;
  signer_.batch_verify(es, out);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], 1) << i;
  EXPECT_EQ(out[8], 0);
}

// Alternating messages force the re-tag on every entry — the worst case
// for the amortization bookkeeping.
TEST_F(SigBatchTest, AlternatingMessagesRetagCorrectly) {
  Bytes m1 = bytes_of("alpha");
  Bytes m2 = bytes_of("beta");
  Bytes s11 = signer_.sign(1, m1), s12 = signer_.sign(1, m2);
  std::vector<SigBatchEntry> es = {entry(1, m1, s11), entry(1, m2, s12),
                                   entry(1, m1, s11), entry(1, m2, s11)};
  std::vector<char> out;
  signer_.batch_verify(es, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(out[3], 0);  // m2 signed bytes ≠ s11
}

TEST_F(SigBatchTest, MemoMissThenHitWithCounters) {
  SigMemo memo;
  Bytes m = bytes_of("m");
  Bytes s = signer_.sign(0, m);
  SigBatchEntry e = entry(0, m, s);
  EXPECT_FALSE(memo.lookup(e).has_value());
  memo.store(e, true);
  auto hit = memo.lookup(e);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.size(), 1u);
}

// The no-poison law: a Byzantine sender attaching a forged signature for
// (signer, message) caches ONLY its own negative verdict. The honest
// signature for the same (signer, message) is a distinct key — it still
// misses (first time) and verifies true, whatever order the two arrive.
TEST_F(SigBatchTest, BadSignatureDoesNotPoisonHonestPair) {
  SigMemo memo;
  Bytes m = bytes_of("ba|echo|1");
  Bytes honest = signer_.sign(3, m);
  Bytes forged = honest;
  forged[0] ^= 1;

  // Forged first: negative verdict cached under the forged key.
  SigBatchEntry bad = entry(3, m, forged);
  memo.store(bad, signer_.verify(bad.signer, bad.message, bad.sig));
  auto bad_hit = memo.lookup(bad);
  ASSERT_TRUE(bad_hit.has_value());
  EXPECT_FALSE(*bad_hit);

  // Honest probe is untouched by the forged entry.
  SigBatchEntry good = entry(3, m, honest);
  EXPECT_FALSE(memo.lookup(good).has_value()) << "forged sig poisoned memo";
  memo.store(good, signer_.verify(good.signer, good.message, good.sig));
  auto good_hit = memo.lookup(good);
  ASSERT_TRUE(good_hit.has_value());
  EXPECT_TRUE(*good_hit);

  // Both verdicts survive side by side.
  EXPECT_FALSE(*memo.lookup(bad));
  EXPECT_TRUE(*memo.lookup(good));
  EXPECT_EQ(memo.size(), 2u);
}

// Key fields must not blur into each other: shifting a byte across the
// message/sig boundary or changing the signer is a different key.
TEST_F(SigBatchTest, MemoKeysFieldBoundaries) {
  SigMemo memo;
  Bytes m_ab = bytes_of("ab"), m_a = bytes_of("a");
  Bytes s_c = bytes_of("c"), s_bc = bytes_of("bc");
  memo.store(SigBatchEntry{1, BytesView(m_ab), BytesView(s_c)}, true);
  EXPECT_FALSE(
      memo.lookup(SigBatchEntry{1, BytesView(m_a), BytesView(s_bc)}).has_value());
  EXPECT_FALSE(
      memo.lookup(SigBatchEntry{2, BytesView(m_ab), BytesView(s_c)}).has_value());
}

TEST_F(SigBatchTest, MemoRestoreOverwrites) {
  SigMemo memo;
  Bytes m = bytes_of("m");
  Bytes s = signer_.sign(0, m);
  SigBatchEntry e = entry(0, m, s);
  memo.store(e, false);
  memo.store(e, true);  // re-store wins, no duplicate row
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_TRUE(*memo.lookup(e));
}

class BatchVerifierSigTest : public SigBatchTest {
 protected:
  BatchVerifierSigTest()
      : batcher_(coin::BatchVerifier::Config{
            std::make_shared<FastVrf>(registry_), nullptr,
            std::make_shared<Signer>(registry_)}) {}

  coin::BatchVerifier batcher_;
};

// verify_signatures must equal the oracle AND collapse repeats: the
// second identical flush answers entirely from the memo (zero HMAC), and
// intra-flush duplicates of one miss reach the signer once.
TEST_F(BatchVerifierSigTest, VerifySignaturesMemoizesAcrossFlushes) {
  Bytes m = bytes_of("echo-proof");
  Bytes good = signer_.sign(5, m);
  Bytes bad = good;
  bad[3] ^= 2;
  std::vector<SigBatchEntry> es = {
      entry(5, m, good), entry(5, m, bad),
      entry(5, m, good),  // intra-flush duplicate of entry 0
  };
  std::vector<char> out;
  auto first = batcher_.verify_signatures(es, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(first.memo_hits, 0u);
  EXPECT_EQ(first.rejects, 1u);
  // Dedup before the signer: 3 entries, 2 unique triples stored.
  EXPECT_EQ(batcher_.sig_memo().size(), 2u);

  auto second = batcher_.verify_signatures(es, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_EQ(second.memo_hits, es.size());  // all answered from the memo
  EXPECT_EQ(second.rejects, 1u);           // rejects recount per flush

  EXPECT_EQ(batcher_.sig_batches(), 2u);
  EXPECT_EQ(batcher_.sig_checks(), 2 * es.size());
  EXPECT_EQ(batcher_.sig_rejects(), 2u);
}

// check_signature (the echo fast path) shares the same memo: the first
// call verifies, repeats answer without re-verifying, and the verdict
// matches the oracle either way.
TEST_F(BatchVerifierSigTest, CheckSignatureSharesTheMemo) {
  Bytes m = bytes_of("ba|echo|0");
  Bytes s = signer_.sign(2, m);
  SigBatchEntry e = entry(2, m, s);
  EXPECT_TRUE(batcher_.check_signature(e));
  EXPECT_EQ(batcher_.sig_memo().misses(), 1u);
  EXPECT_TRUE(batcher_.check_signature(e));
  EXPECT_GE(batcher_.sig_memo().hits(), 1u);

  // And a later batch containing the same triple is a pure memo hit.
  std::vector<SigBatchEntry> es = {e};
  std::vector<char> out;
  auto stats = batcher_.verify_signatures(es, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(stats.memo_hits, 1u);
}

}  // namespace
}  // namespace coincidence::crypto
