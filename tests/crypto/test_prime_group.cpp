#include "crypto/prime_group.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "crypto/prime.h"

namespace coincidence::crypto {
namespace {

class PrimeGroupTest : public ::testing::Test {
 protected:
  // A 96-bit test group: big enough to exercise multi-limb arithmetic,
  // small enough to regenerate instantly.
  static const PrimeGroup& group() {
    static const PrimeGroup g = PrimeGroup::generate(96, 7);
    return g;
  }
};

TEST_F(PrimeGroupTest, GeneratorIsElement) {
  EXPECT_TRUE(group().is_element(group().g()));
}

TEST_F(PrimeGroupTest, GeneratorHasOrderQ) {
  EXPECT_EQ(group().exp_g(group().q()), Bignum(1));
  // ...and not a smaller order: g^1 != 1 and q is prime, so order is q.
  EXPECT_NE(group().exp_g(Bignum(1)), Bignum(1));
}

TEST_F(PrimeGroupTest, ExpHomomorphism) {
  // g^a * g^b == g^(a+b mod q)
  Bignum a(123456789), b(987654321);
  Bignum lhs = group().mul(group().exp_g(a), group().exp_g(b));
  Bignum rhs = group().exp_g(Bignum::add_mod(a % group().q(), b % group().q(),
                                             group().q()));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PrimeGroupTest, InverseMultipliesToOne) {
  Bignum x = group().exp_g(Bignum(31337));
  EXPECT_EQ(group().mul(x, group().inv(x)), Bignum(1));
}

TEST_F(PrimeGroupTest, NonElementsRejected) {
  EXPECT_FALSE(group().is_element(Bignum()));        // 0
  EXPECT_FALSE(group().is_element(group().p()));     // = p
  EXPECT_FALSE(group().is_element(group().p() - Bignum(1)));  // order 2
}

TEST_F(PrimeGroupTest, HashToGroupLandsInGroup) {
  for (int i = 0; i < 20; ++i) {
    Bignum h = group().hash_to_group(bytes_of_u64(i));
    EXPECT_TRUE(group().is_element(h)) << i;
  }
}

TEST_F(PrimeGroupTest, HashToGroupDeterministicAndInputSensitive) {
  Bignum a1 = group().hash_to_group(bytes_of("input"));
  Bignum a2 = group().hash_to_group(bytes_of("input"));
  Bignum b = group().hash_to_group(bytes_of("other"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST_F(PrimeGroupTest, HashToScalarBelowQ) {
  for (int i = 0; i < 20; ++i) {
    Bignum s = group().hash_to_scalar(bytes_of_u64(i));
    EXPECT_TRUE(s < group().q());
  }
}

TEST_F(PrimeGroupTest, EncodeFixedWidth) {
  Bytes e = group().encode(Bignum(5));
  EXPECT_EQ(e.size(), group().byte_len());
  EXPECT_EQ(Bignum::from_bytes_be(e), Bignum(5));
}

TEST(PrimeGroup, FromSafePrimeValidates) {
  SafePrime sp = generate_safe_prime(64, 3);
  PrimeGroup g = PrimeGroup::from_safe_prime(sp.p);
  EXPECT_EQ(g.q(), sp.q);
  EXPECT_EQ(g.g(), Bignum(4));
}

TEST(PrimeGroup, FromNonSafePrimeThrows) {
  // 2^89-1 is prime but (p-1)/2 is not prime.
  Bignum m89 = (Bignum(1) << 89) - Bignum(1);
  EXPECT_THROW(PrimeGroup::from_safe_prime(m89), ConfigError);
  EXPECT_THROW(PrimeGroup::from_safe_prime(Bignum(100)), ConfigError);
}

TEST(PrimeGroup, Rfc2409Constructs) {
  PrimeGroup g = PrimeGroup::rfc2409_768();
  EXPECT_EQ(g.p().bit_length(), 768u);
  EXPECT_EQ(g.byte_len(), 96u);
  // The header assumes primality; re-verify it once here so the bench
  // sweep's smaller modulus rests on a checked constant.
  EXPECT_NO_THROW(PrimeGroup::from_safe_prime(g.p()));
  Bignum x = g.exp_g(Bignum(123));
  EXPECT_TRUE(g.is_element(x));
}

TEST(PrimeGroup, Rfc3526Constructs) {
  PrimeGroup g = PrimeGroup::rfc3526_1536();
  EXPECT_EQ(g.p().bit_length(), 1536u);
  EXPECT_EQ(g.byte_len(), 192u);
  // Spot-check the subgroup law on the production-size group.
  Bignum x = g.exp_g(Bignum(123));
  EXPECT_TRUE(g.is_element(x));
}

}  // namespace
}  // namespace coincidence::crypto
