#include "crypto/ddh_vrf.h"

#include <gtest/gtest.h>

#include <set>

#include "common/ser.h"

namespace coincidence::crypto {
namespace {

class DdhVrfTest : public ::testing::Test {
 protected:
  static const DdhVrf& vrf() {
    static const DdhVrf v{PrimeGroup::generate(128, 11)};
    return v;
  }
  static const VrfKeyPair& keys() {
    static const VrfKeyPair kp = [] {
      Rng rng(1);
      return vrf().keygen(rng);
    }();
    return kp;
  }
};

TEST_F(DdhVrfTest, HonestEvalVerifies) {
  VrfOutput out = vrf().eval(keys().sk, bytes_of("round-1"));
  EXPECT_TRUE(vrf().verify(keys().pk, bytes_of("round-1"), out));
}

TEST_F(DdhVrfTest, EvalIsDeterministic) {
  VrfOutput a = vrf().eval(keys().sk, bytes_of("x"));
  VrfOutput b = vrf().eval(keys().sk, bytes_of("x"));
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.proof, b.proof);
}

TEST_F(DdhVrfTest, OutputDependsOnInput) {
  EXPECT_NE(vrf().eval(keys().sk, bytes_of("a")).value,
            vrf().eval(keys().sk, bytes_of("b")).value);
}

TEST_F(DdhVrfTest, OutputDependsOnKey) {
  Rng rng(2);
  VrfKeyPair other = vrf().keygen(rng);
  EXPECT_NE(vrf().eval(keys().sk, bytes_of("x")).value,
            vrf().eval(other.sk, bytes_of("x")).value);
}

TEST_F(DdhVrfTest, WrongInputRejected) {
  VrfOutput out = vrf().eval(keys().sk, bytes_of("a"));
  EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("b"), out));
}

TEST_F(DdhVrfTest, WrongKeyRejected) {
  Rng rng(3);
  VrfKeyPair other = vrf().keygen(rng);
  VrfOutput out = vrf().eval(keys().sk, bytes_of("x"));
  EXPECT_FALSE(vrf().verify(other.pk, bytes_of("x"), out));
}

TEST_F(DdhVrfTest, TamperedValueRejected) {
  VrfOutput out = vrf().eval(keys().sk, bytes_of("x"));
  out.value[0] ^= 0x01;
  EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("x"), out));
}

TEST_F(DdhVrfTest, TamperedProofRejected) {
  VrfOutput out = vrf().eval(keys().sk, bytes_of("x"));
  for (std::size_t pos : {std::size_t{5}, out.proof.size() / 2, out.proof.size() - 1}) {
    VrfOutput bad = out;
    bad.proof[pos] ^= 0xff;
    EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("x"), bad)) << pos;
  }
}

TEST_F(DdhVrfTest, GarbageProofRejectedNotCrash) {
  VrfOutput out = vrf().eval(keys().sk, bytes_of("x"));
  out.proof = bytes_of("not a proof at all");
  EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("x"), out));
  out.proof.clear();
  EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("x"), out));
}

TEST_F(DdhVrfTest, UniquenessForgingDifferentValueFails) {
  // An adversary who keeps the honest proof but swaps in a different value
  // (or vice versa) must be rejected: the value is bound to Γ via H2.
  VrfOutput honest = vrf().eval(keys().sk, bytes_of("x"));
  VrfOutput other = vrf().eval(keys().sk, bytes_of("y"));
  VrfOutput frankenstein{other.value, honest.proof};
  EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("x"), frankenstein));
}

TEST_F(DdhVrfTest, SmallOrderGammaRejected) {
  // Substitute Γ = p-1 (the order-2 element): must fail the subgroup check.
  const PrimeGroup& g = vrf().group();
  VrfOutput out = vrf().eval(keys().sk, bytes_of("x"));
  Reader r(out.proof);
  (void)r.blob();  // discard honest gamma
  Bytes a = r.blob();
  Bytes b = r.blob();
  Bytes s = r.blob();
  Writer forged;
  forged.blob(g.encode(g.p() - Bignum(1))).blob(a).blob(b).blob(s);
  VrfOutput bad{out.value, forged.take()};
  EXPECT_FALSE(vrf().verify(keys().pk, bytes_of("x"), bad));
}

TEST_F(DdhVrfTest, ValuesLookUniform) {
  // First byte of outputs over many inputs should spread.
  std::set<std::uint8_t> first_bytes;
  for (int i = 0; i < 64; ++i) {
    VrfOutput out = vrf().eval(keys().sk, bytes_of_u64(i));
    first_bytes.insert(out.value[0]);
  }
  EXPECT_GT(first_bytes.size(), 40u);
}

TEST_F(DdhVrfTest, KeygenProducesValidKeys) {
  Rng rng(99);
  for (int i = 0; i < 5; ++i) {
    VrfKeyPair kp = vrf().keygen(rng);
    VrfOutput out = vrf().eval(kp.sk, bytes_of("probe"));
    EXPECT_TRUE(vrf().verify(kp.pk, bytes_of("probe"), out));
  }
}

TEST_F(DdhVrfTest, ValueSizeIs32) {
  EXPECT_EQ(vrf().value_size(), 32u);
  VrfOutput out = vrf().eval(keys().sk, bytes_of("x"));
  EXPECT_EQ(out.value.size(), 32u);
}

TEST(DdhVrfHelpers, ValueAsU64AndUnitDouble) {
  Bytes v(32, 0);
  v[0] = 0x80;
  EXPECT_EQ(vrf_value_as_u64(v), 0x8000000000000000ULL);
  double d = vrf_value_as_unit_double(v);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);
  EXPECT_NEAR(d, 0.5, 1e-9);
}

}  // namespace
}  // namespace coincidence::crypto
