#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace coincidence::crypto {
namespace {

std::string mac_hex(BytesView key, BytesView msg) {
  Digest d = hmac_sha256(key, msg);
  return to_hex(BytesView(d.data(), d.size()));
}

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex(key, bytes_of("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(mac_hex(bytes_of("Jefe"), bytes_of("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(mac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);  // key longer than block size -> hashed first
  EXPECT_EQ(mac_hex(key, bytes_of("Test Using Larger Than Block-Size Key - "
                                  "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(hmac_sha256(bytes_of("k1"), bytes_of("m")),
            hmac_sha256(bytes_of("k2"), bytes_of("m")));
}

TEST(Hmac, MessageSensitivity) {
  EXPECT_NE(hmac_sha256(bytes_of("k"), bytes_of("m1")),
            hmac_sha256(bytes_of("k"), bytes_of("m2")));
}

TEST(HmacDrbg, Deterministic) {
  HmacDrbg a(bytes_of("seed"));
  HmacDrbg b(bytes_of("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(HmacDrbg, SeedSensitivity) {
  HmacDrbg a(bytes_of("seed-a"));
  HmacDrbg b(bytes_of("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, StreamAdvances) {
  HmacDrbg d(bytes_of("s"));
  EXPECT_NE(d.generate(32), d.generate(32));
}

TEST(HmacDrbg, SplitVsWholeDiffersAcrossCalls) {
  // Each generate() call reseeds internal state, so generate(64) is NOT
  // generate(32) || generate(32); pin that contract.
  HmacDrbg whole(bytes_of("s"));
  HmacDrbg split(bytes_of("s"));
  Bytes w = whole.generate(64);
  Bytes s1 = split.generate(32);
  EXPECT_TRUE(std::equal(s1.begin(), s1.end(), w.begin()));
  Bytes s2 = split.generate(32);
  EXPECT_FALSE(std::equal(s2.begin(), s2.end(), w.begin() + 32));
}

TEST(HmacDrbg, NextU64Varies) {
  HmacDrbg d(bytes_of("u"));
  std::uint64_t a = d.next_u64();
  std::uint64_t b = d.next_u64();
  EXPECT_NE(a, b);
}

TEST(HmacDrbg, OutputBalanced) {
  HmacDrbg d(bytes_of("balance"));
  Bytes stream = d.generate(4096);
  std::size_t ones = 0;
  for (std::uint8_t byte : stream) ones += static_cast<std::size_t>(__builtin_popcount(byte));
  double frac = static_cast<double>(ones) / (4096 * 8);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

}  // namespace
}  // namespace coincidence::crypto
