#include "crypto/fast_vrf.h"

#include <gtest/gtest.h>

#include <set>

#include "common/errors.h"

namespace coincidence::crypto {
namespace {

class FastVrfTest : public ::testing::Test {
 protected:
  FastVrfTest() : registry_(KeyRegistry::create_for(8, 1234)), vrf_(registry_) {}

  std::shared_ptr<KeyRegistry> registry_;
  FastVrf vrf_;
};

TEST_F(FastVrfTest, HonestEvalVerifies) {
  VrfOutput out = vrf_.eval(registry_->sk_of(0), bytes_of("r1"));
  EXPECT_TRUE(vrf_.verify(registry_->pk_of(0), bytes_of("r1"), out));
}

TEST_F(FastVrfTest, Deterministic) {
  VrfOutput a = vrf_.eval(registry_->sk_of(1), bytes_of("x"));
  VrfOutput b = vrf_.eval(registry_->sk_of(1), bytes_of("x"));
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.proof, b.proof);
}

TEST_F(FastVrfTest, DistinctAcrossKeysAndInputs) {
  EXPECT_NE(vrf_.eval(registry_->sk_of(0), bytes_of("x")).value,
            vrf_.eval(registry_->sk_of(1), bytes_of("x")).value);
  EXPECT_NE(vrf_.eval(registry_->sk_of(0), bytes_of("x")).value,
            vrf_.eval(registry_->sk_of(0), bytes_of("y")).value);
}

TEST_F(FastVrfTest, WrongPkRejected) {
  VrfOutput out = vrf_.eval(registry_->sk_of(0), bytes_of("x"));
  EXPECT_FALSE(vrf_.verify(registry_->pk_of(1), bytes_of("x"), out));
}

TEST_F(FastVrfTest, WrongInputRejected) {
  VrfOutput out = vrf_.eval(registry_->sk_of(0), bytes_of("x"));
  EXPECT_FALSE(vrf_.verify(registry_->pk_of(0), bytes_of("y"), out));
}

TEST_F(FastVrfTest, TamperedValueRejected) {
  VrfOutput out = vrf_.eval(registry_->sk_of(0), bytes_of("x"));
  out.value[5] ^= 1;
  EXPECT_FALSE(vrf_.verify(registry_->pk_of(0), bytes_of("x"), out));
}

TEST_F(FastVrfTest, TamperedProofRejected) {
  VrfOutput out = vrf_.eval(registry_->sk_of(0), bytes_of("x"));
  out.proof[5] ^= 1;
  EXPECT_FALSE(vrf_.verify(registry_->pk_of(0), bytes_of("x"), out));
}

TEST_F(FastVrfTest, UnregisteredKeyRejected) {
  Rng rng(5);
  VrfKeyPair rogue = vrf_.keygen(rng);  // never registered
  VrfOutput out = vrf_.eval(rogue.sk, bytes_of("x"));
  EXPECT_FALSE(vrf_.verify(rogue.pk, bytes_of("x"), out));
}

TEST_F(FastVrfTest, UniquenessForgedValueWithHonestProofRejected) {
  VrfOutput honest = vrf_.eval(registry_->sk_of(0), bytes_of("x"));
  VrfOutput forged{vrf_.eval(registry_->sk_of(0), bytes_of("y")).value,
                   honest.proof};
  EXPECT_FALSE(vrf_.verify(registry_->pk_of(0), bytes_of("x"), forged));
}

TEST_F(FastVrfTest, OutputsSpread) {
  std::set<std::uint8_t> first_bytes;
  for (int i = 0; i < 64; ++i)
    first_bytes.insert(vrf_.eval(registry_->sk_of(0), bytes_of_u64(i)).value[0]);
  EXPECT_GT(first_bytes.size(), 40u);
}

TEST(KeyRegistry, CreateForIsDeterministic) {
  auto a = KeyRegistry::create_for(4, 9);
  auto b = KeyRegistry::create_for(4, 9);
  EXPECT_EQ(a->pk_of(3), b->pk_of(3));
  EXPECT_EQ(a->sk_of(0), b->sk_of(0));
}

TEST(KeyRegistry, SeedChangesKeys) {
  auto a = KeyRegistry::create_for(4, 9);
  auto b = KeyRegistry::create_for(4, 10);
  EXPECT_NE(a->pk_of(0), b->pk_of(0));
}

TEST(KeyRegistry, ReverseLookup) {
  auto reg = KeyRegistry::create_for(4, 9);
  auto sk = reg->sk_for_pk(reg->pk_of(2));
  ASSERT_TRUE(sk.has_value());
  EXPECT_EQ(*sk, reg->sk_of(2));
  EXPECT_FALSE(reg->sk_for_pk(Bytes{1, 2, 3}).has_value());
}

TEST(KeyRegistry, DuplicateIdThrows) {
  KeyRegistry reg;
  reg.register_keypair(0, Bytes{1}, Bytes{2});
  EXPECT_THROW(reg.register_keypair(0, Bytes{3}, Bytes{4}),
               PreconditionError);
}

TEST(KeyRegistry, UnknownIdThrows) {
  KeyRegistry reg;
  EXPECT_THROW(reg.sk_of(42), PreconditionError);
  EXPECT_FALSE(reg.has(42));
}

}  // namespace
}  // namespace coincidence::crypto
