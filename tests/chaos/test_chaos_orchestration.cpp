// Chaos orchestration plane, end to end through core::run_agreement: the
// PR-gate slice of the nightly `chaos_run --sweep` grid. Every cell runs
// with the InvariantChecker attached — agreement, validity, integrity
// across recoveries, corruption budget, partition healing and the exact
// word-count cross-check all hold on every configuration, the sweep is
// bit-identical regardless of worker-thread count, and an injected
// violation produces the one-line (seed, config, schedule-phase) repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/runner.h"
#include "sim/chaos.h"

namespace coincidence::core {
namespace {

/// Mirror of tools/chaos_run.cpp sweep_grid(): one full cycle is 90
/// cells — 13 copies x 6 presets on the cheap n=4 shared-coin protocol
/// plus 6 presets each for the two n=32 committee protocols. The presets
/// "adaptive" and "combined" swap the scheduler for the delayed-adaptive
/// hunter.
struct SweepCell {
  Protocol protocol;
  std::size_t n;
  std::string preset;
  AdversaryKind adversary;
};

std::vector<SweepCell> sweep_grid() {
  const std::vector<std::string>& presets = sim::ChaosSchedule::preset_names();
  auto adversary_for = [](const std::string& p) {
    return p == "adaptive" || p == "combined"
               ? AdversaryKind::kAdaptiveCorruption
               : AdversaryKind::kRandom;
  };
  std::vector<SweepCell> grid;
  for (int copy = 0; copy < 13; ++copy)
    for (const std::string& p : presets)
      grid.push_back({Protocol::kMmrSharedCoin, 4, p, adversary_for(p)});
  for (const std::string& p : presets)
    grid.push_back({Protocol::kMmrWhpCoin, 32, p, adversary_for(p)});
  for (const std::string& p : presets)
    grid.push_back({Protocol::kBaWhp, 32, p, adversary_for(p)});
  return grid;
}

RunOptions cell_options(const SweepCell& cell, std::uint64_t seed) {
  RunOptions o;
  o.protocol = cell.protocol;
  o.n = cell.n;
  o.seed = seed;
  o.adversary = cell.adversary;
  o.chaos = sim::ChaosSchedule::preset(cell.preset, cell.n);
  o.check_invariants = true;
  // Drop-mode partitions lose packets for good: liveness across them
  // needs the retransmitting transport.
  if (cell.preset == "partition-drop" || cell.preset == "combined") {
    o.reliable_channel = true;
    // Budget that cannot be exhausted inside the drop window (see
    // RunOptions::transport_retransmits).
    o.transport_retransmits = 64;
  }
  // Hunting the full f at toy n can legitimately starve a W-threshold
  // committee quorum (the Chernoff margins are asymptotic): cap the
  // hunter on the committee-coin hybrid.
  if (cell.protocol == Protocol::kMmrWhpCoin) o.adaptive_victims = 2;
  // Unanimous inputs double as a validity oracle.
  const int input = static_cast<int>(seed % 2);
  o.inputs.assign(o.n, input ? ba::kOne : ba::kZero);
  o.expected_decision = input;
  if (cell.preset == "churn" || cell.preset == "combined") {
    o.crash_recover = 1;
    o.recover_after = 64 * cell.n;
  }
  return o;
}

std::string cell_label(const SweepCell& cell, std::uint64_t seed) {
  return std::string(protocol_name(cell.protocol)) + "/" + cell.preset +
         "/" + adversary_name(cell.adversary) + "/n=" +
         std::to_string(cell.n) + "/seed=" + std::to_string(seed);
}

/// Headline fields two runs of the same config must agree on; also the
/// fields the nightly sweep digest folds.
void expect_reports_equal(const RunReport& a, const RunReport& b,
                          const std::string& label) {
  EXPECT_EQ(a.all_correct_decided, b.all_correct_decided) << label;
  EXPECT_EQ(a.decision, b.decision) << label;
  EXPECT_EQ(a.max_decided_round, b.max_decided_round) << label;
  EXPECT_EQ(a.correct_words, b.correct_words) << label;
  EXPECT_EQ(a.messages, b.messages) << label;
  EXPECT_EQ(a.corrupted, b.corrupted) << label;
  EXPECT_EQ(a.partition_held, b.partition_held) << label;
  EXPECT_EQ(a.partition_dropped, b.partition_dropped) << label;
  EXPECT_EQ(a.partition_released, b.partition_released) << label;
  EXPECT_EQ(a.storm_copies, b.storm_copies) << label;
  EXPECT_EQ(a.churn_crashes, b.churn_crashes) << label;
  EXPECT_EQ(a.invariant_violations.size(), b.invariant_violations.size())
      << label;
}

// One full grid cycle (90 configs) with the checker on every run: the
// quick PR-gate slice of the nightly 500+ sweep. Zero violations, zero
// stalls, and the BatchVerifier queue ledger balances on every cell.
TEST(ChaosOrchestration, QuickSweepHoldsEveryInvariant) {
  const std::vector<SweepCell> grid = sweep_grid();
  std::vector<RunOptions> options;
  std::vector<std::string> labels;
  // Seed base 1 matches the nightly `chaos_run --sweep`: ba-whp is a
  // WHP protocol and at toy n a rare seed legitimately burns all
  // max_rounds without deciding (e.g. seed 805466 stalls with no chaos
  // at all) — the sweep asserts liveness, so it runs on a seed range
  // verified to be outside that tail.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::uint64_t seed = 1 + static_cast<std::uint64_t>(i);
    options.push_back(cell_options(grid[i], seed));
    labels.push_back(cell_label(grid[i], seed));
  }
  ASSERT_EQ(options.size(), 90u);

  ThreadPool pool;
  std::vector<RunReport> reports = run_agreements_parallel(pool, options);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RunReport& r = reports[i];
    for (const std::string& v : r.invariant_violations)
      ADD_FAILURE() << labels[i] << ": " << v;
    EXPECT_TRUE(r.all_correct_decided) << labels[i];
    EXPECT_TRUE(r.agreement) << labels[i];
    ASSERT_TRUE(r.decision.has_value()) << labels[i];
    EXPECT_EQ(*r.decision, *options[i].expected_decision) << labels[i];
    // Satellite invariant: the deferred-verification queue ledger is
    // conservative on every run — crash-recovery neither loses nor
    // double-counts a share.
    EXPECT_EQ(r.verify_enqueued, r.verify_batch_flushed + r.verify_discarded)
        << labels[i];
    // Partitions healed: everything held was released.
    EXPECT_EQ(r.partition_held, r.partition_released) << labels[i];
  }
}

// The sweep's outcome must not depend on worker-thread count: runs are
// independent seeded simulations and run_agreements_parallel preserves
// input order, so the 1-thread and 8-thread sweeps must agree report by
// report — the gtest analogue of `chaos_run --sweep --threads N` digest
// equality.
TEST(ChaosOrchestration, SweepIsBitIdenticalAcrossThreadCounts) {
  const std::vector<SweepCell> grid = sweep_grid();
  std::vector<RunOptions> options;
  std::vector<std::string> labels;
  // One cell per (protocol, preset) flavour keeps the serial arm cheap:
  // the last 18 grid cells are exactly the n=4 tail cycle plus both n=32
  // protocols across all six presets.
  for (std::size_t i = grid.size() - 18; i < grid.size(); ++i) {
    const std::uint64_t seed = 0xd1ce + static_cast<std::uint64_t>(i);
    options.push_back(cell_options(grid[i], seed));
    labels.push_back(cell_label(grid[i], seed));
  }
  ThreadPool serial(1);
  ThreadPool wide(8);
  std::vector<RunReport> one = run_agreements_parallel(serial, options);
  std::vector<RunReport> eight = run_agreements_parallel(wide, options);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i)
    expect_reports_equal(one[i], eight[i], labels[i]);
}

// Sabotage drill: configure the validity oracle wrong on purpose and the
// run must (a) report the violation and (b) print the one-line
// copy-pasteable repro carrying the exact (seed, config, schedule-phase)
// triple to stderr.
TEST(ChaosOrchestration, InjectedViolationPrintsOneLineSeedRepro) {
  RunOptions o;
  o.protocol = Protocol::kMmrSharedCoin;
  o.n = 4;
  o.seed = 2;
  o.check_invariants = true;
  // Inputs are unanimously 0; claiming the unanimous input was 1 makes
  // every correct decision a "validity violation".
  o.inputs.assign(o.n, ba::kZero);
  o.expected_decision = 1;
  o.chaos = sim::ChaosSchedule::parse("storm@0+64:p=0.25,copies=2");

  testing::internal::CaptureStderr();
  RunReport report = run_agreement(o);
  const std::string err = testing::internal::GetCapturedStderr();

  ASSERT_FALSE(report.invariant_violations.empty());
  EXPECT_NE(report.invariant_violations[0].find("invariant=validity"),
            std::string::npos)
      << report.invariant_violations[0];
  // The repro line: marker, binary, and the full triple.
  EXPECT_NE(err.find("CHAOS-VIOLATION"), std::string::npos) << err;
  EXPECT_NE(err.find("chaos_run --protocol mmr-vrf-coin --n 4 --seed 2"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("--schedule \"storm@0+64:p=0.25,copies=2\""),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("invariant=validity"), std::string::npos) << err;
  // One line per violation: the first line is self-contained.
  EXPECT_NE(err.find('\n'), std::string::npos);
}

// A clean chaos run prints nothing: the repro line is a violation-only
// channel, so sweep logs stay greppable.
TEST(ChaosOrchestration, CleanRunPrintsNoRepro) {
  RunOptions o;
  o.protocol = Protocol::kMmrSharedCoin;
  o.n = 4;
  o.seed = 3;
  o.check_invariants = true;
  o.inputs.assign(o.n, ba::kOne);
  o.expected_decision = 1;
  o.chaos = sim::ChaosSchedule::preset("combined", o.n);
  o.reliable_channel = true;
  o.crash_recover = 1;
  o.recover_after = 64 * o.n;

  testing::internal::CaptureStderr();
  RunReport report = run_agreement(o);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(report.invariant_violations.empty());
  EXPECT_EQ(err.find("CHAOS-VIOLATION"), std::string::npos) << err;
}

// ISSUE satellite: a healing drop-mode partition over net::ReliableChannel
// — the retransmission layer must drain the healed partition to a
// decision with exactly-once delivery (the checker's word cross-check
// would flag any double-count), and the loss accounting must keep
// partitioning the metrics exactly: drops, retransmits and dead letters
// each land in their own bucket, never in the §2 word complexity.
TEST(ChaosOrchestration, PartitionHealOverReliableChannelDrainsExactlyOnce) {
  RunOptions o;
  o.protocol = Protocol::kBaWhp;
  o.n = 32;
  o.seed = 11;
  o.check_invariants = true;
  o.inputs.assign(o.n, ba::kOne);
  o.expected_decision = 1;
  o.chaos = sim::ChaosSchedule::preset("partition-drop", o.n);
  o.reliable_channel = true;

  RunReport report = run_agreement(o);
  for (const std::string& v : report.invariant_violations)
    ADD_FAILURE() << v;
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_TRUE(report.agreement);
  ASSERT_TRUE(report.decision.has_value());
  EXPECT_EQ(*report.decision, 1);
  // The partition really dropped traffic, and repair really happened.
  EXPECT_GT(report.partition_dropped, 0u);
  EXPECT_EQ(report.partition_held, 0u);  // drop mode buffers nothing
  EXPECT_GT(report.retransmits, 0u);
  EXPECT_GT(report.retransmit_words, 0u);
  // Accounting partitions exactly: repair words and abandoned frames are
  // outside the §2 measure, and abandoned frames are bounded by traffic
  // that actually went on the wire.
  EXPECT_GT(report.correct_words, 0u);
  EXPECT_LE(report.dead_letter_words,
            report.correct_words + report.retransmit_words);
}

// The adaptive hunter obeys the corruption budget even stacked on top of
// churn waves and a static crash-recover mix: the checker's budget
// invariant (online and at finalize) passed, and the final corrupted
// count stays within the protocol's resilience.
TEST(ChaosOrchestration, AdaptiveHunterPlusChurnStaysWithinBudget) {
  RunOptions o;
  o.protocol = Protocol::kBaWhp;
  o.n = 32;
  o.seed = 5;
  o.adversary = AdversaryKind::kAdaptiveCorruption;
  o.check_invariants = true;
  o.inputs.assign(o.n, ba::kZero);
  o.expected_decision = 0;
  o.chaos = sim::ChaosSchedule::preset("combined", o.n);
  o.reliable_channel = true;
  o.crash_recover = 1;
  o.recover_after = 64 * o.n;

  RunReport report = run_agreement(o);
  for (const std::string& v : report.invariant_violations)
    ADD_FAILURE() << v;
  EXPECT_TRUE(report.all_correct_decided);
  ASSERT_TRUE(report.decision.has_value());
  EXPECT_EQ(*report.decision, 0);
  EXPECT_LE(report.corrupted, report.protocol_f);
  EXPECT_GT(report.corrupted, 0u);  // the hostility was real
  EXPECT_GT(report.churn_crashes, 0u);
}

}  // namespace
}  // namespace coincidence::core
