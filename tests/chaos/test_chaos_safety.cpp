// Randomized chaos suite: sweep (adversary x LinkPlan x FaultPlan) over
// seeded runs and assert that SAFETY never breaks. Termination is
// allowed to degrade — a protocol that assumes reliable links may stall
// under 100% loss — but no amount of substrate abuse may produce
// disagreement or an invalid decision. Every configuration is seeded,
// so a failure here is a replayable counterexample, not a flake.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/runner.h"

namespace coincidence::core {
namespace {

using sim::LinkPlan;
using sim::NetworkProfile;

struct LinkCase {
  const char* name;
  LinkPlan plan;
};

std::vector<LinkCase> link_cases() {
  LinkPlan storm;  // everything at once
  storm.drop_p = 0.15;
  storm.dup_p = 0.3;
  storm.max_duplicates = 2;
  storm.replay_p = 0.2;
  return {
      {"lossless", LinkPlan::lossless()},
      {"drop10", LinkPlan::lossy(0.10)},
      {"drop30", LinkPlan::lossy(0.30)},
      {"dup50x2", LinkPlan::duplicating(0.5, 2)},
      {"replay30", LinkPlan::replaying(0.3)},
      {"storm", storm},
  };
}

struct FaultCase {
  const char* name;
  std::size_t crash = 0, silent = 0, junk = 0, crash_recover = 0;
};

std::vector<FaultCase> fault_cases() {
  return {
      {"clean"},
      {"crash", 1, 0, 0, 0},
      {"silent", 0, 1, 0, 0},
      {"junk", 0, 0, 1, 0},
      {"crash-recover", 0, 0, 0, 1},
  };
}

std::vector<AdversaryKind> adversary_cases() {
  return {AdversaryKind::kRandom, AdversaryKind::kFifo,
          AdversaryKind::kDelaySenders, AdversaryKind::kSplit,
          AdversaryKind::kHeavyTail};
}

/// Runs one config and asserts the safety invariants:
///  - agreement: no two correct processes decided differently;
///  - validity: with unanimous input v, any decision equals v.
/// Returns whether all correct processes decided (liveness, reported
/// but never asserted).
bool check_safety_report(const RunReport& report, int unanimous_input,
                         const std::string& label) {
  EXPECT_TRUE(report.agreement) << label;
  if (report.decision)
    EXPECT_EQ(*report.decision, unanimous_input) << label;
  return report.all_correct_decided;
}

bool check_safety(const RunOptions& options, int unanimous_input,
                  const std::string& label) {
  return check_safety_report(run_agreement(options), unanimous_input, label);
}

std::string case_label(Protocol proto, AdversaryKind adv,
                       const char* link_name, const char* fault_name,
                       std::uint64_t seed) {
  return std::string(protocol_name(proto)) + "/" + adversary_name(adv) +
         "/" + link_name + "/" + fault_name + "/seed=" + std::to_string(seed);
}

// 2 protocols x 5 adversaries x 6 link plans x 5 fault mixes = 300
// seeded configurations on the cheap baselines. The grid is the point:
// safety must hold on every cell, including the ones where nothing can
// terminate.
TEST(ChaosSafety, BaselineProtocolsSweepNeverDisagree) {
  // The 300 cells are independent seeded runs: collect the reports on
  // the parallel driver, then assert serially on this thread (GoogleTest
  // expectations are not thread-safe). Reports come back in input order,
  // so labels and tallies line up with the serial sweep exactly.
  std::vector<RunOptions> grid;
  std::vector<std::string> labels;
  std::vector<int> inputs;
  for (Protocol proto : {Protocol::kBracha, Protocol::kBenOr}) {
    for (AdversaryKind adv : adversary_cases()) {
      for (const LinkCase& link : link_cases()) {
        for (const FaultCase& fault : fault_cases()) {
          RunOptions options;
          options.protocol = proto;
          options.n = proto == Protocol::kBenOr ? 6 : 4;
          const std::uint64_t seed =
              0xc0ffee + static_cast<std::uint64_t>(grid.size());
          options.seed = seed;
          options.adversary = adv;
          options.network = NetworkProfile::uniform(link.plan);
          options.crash = fault.crash;
          options.silent = fault.silent;
          options.junk = fault.junk;
          options.crash_recover = fault.crash_recover;
          options.recover_after = 200;
          options.max_rounds = 40;
          const int input = static_cast<int>(grid.size() % 2);
          options.inputs.assign(options.n,
                                input ? ba::kOne : ba::kZero);
          grid.push_back(options);
          labels.push_back(
              case_label(proto, adv, link.name, fault.name, seed));
          inputs.push_back(input);
        }
      }
    }
  }
  ThreadPool pool;
  std::vector<RunReport> reports = run_agreements_parallel(pool, grid);
  int live = 0;
  const int total = static_cast<int>(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    if (check_safety_report(reports[i], inputs[i], labels[i])) ++live;
  ASSERT_EQ(total, 300);
  // Liveness degrades under chaos but must not vanish: the lossless
  // column alone is 50 cells and should essentially always decide.
  EXPECT_GE(live, total / 3) << live << "/" << total << " configs decided";
}

// The headline protocol on moderately hostile networks: ba-whp runs are
// ~100x the baselines' cost, so this samples the grid instead of
// sweeping it.
TEST(ChaosSafety, BaWhpSampledChaosNeverDisagrees) {
  struct Sample {
    AdversaryKind adv;
    LinkPlan plan;
    FaultCase fault;
  };
  LinkPlan storm;
  storm.drop_p = 0.05;
  storm.dup_p = 0.2;
  storm.replay_p = 0.1;
  const std::vector<Sample> samples = {
      {AdversaryKind::kRandom, LinkPlan::lossy(0.10), {"clean"}},
      {AdversaryKind::kFifo, LinkPlan::duplicating(0.5, 2), {"clean"}},
      {AdversaryKind::kSplit, LinkPlan::replaying(0.3), {"clean"}},
      {AdversaryKind::kHeavyTail, storm, {"clean"}},
      {AdversaryKind::kRandom, LinkPlan::duplicating(0.3),
       {"silent", 0, 1, 0, 0}},
      {AdversaryKind::kRandom, LinkPlan::lossy(0.05),
       {"crash-recover", 0, 0, 0, 1}},
  };
  int idx = 0;
  for (const Sample& s : samples) {
    RunOptions options;
    options.protocol = Protocol::kBaWhp;
    options.n = 32;
    options.seed = 7000 + static_cast<std::uint64_t>(idx);
    options.adversary = s.adv;
    options.network = NetworkProfile::uniform(s.plan);
    options.silent = s.fault.silent;
    options.crash_recover = s.fault.crash_recover;
    options.recover_after = 2000;
    const int input = idx % 2;
    options.inputs.assign(options.n, input ? ba::kOne : ba::kZero);
    check_safety(options, input,
                 case_label(Protocol::kBaWhp, s.adv, "sampled",
                            s.fault.name, options.seed));
    ++idx;
  }
}

// Memoized/batched signature verification vs direct verification across
// a chaos sweep: for every sampled (adversary x link x fault) cell the
// deferred run's decision, rounds, words and messages must be
// bit-identical to the inline run's. Chaos makes this a strong oracle —
// drops, duplicates, replays and crash-recovery all reshuffle WHICH ok
// messages each process sees, and any divergence in verdicts or flush
// timing would desynchronize the seeded substrate immediately.
TEST(ChaosSafety, BaWhpDeferredSigVerdictsMatchInlineAcrossChaosSweep) {
  struct Sample {
    AdversaryKind adv;
    LinkPlan plan;
    FaultCase fault;
  };
  LinkPlan storm;
  storm.drop_p = 0.05;
  storm.dup_p = 0.2;
  storm.replay_p = 0.1;
  const std::vector<Sample> samples = {
      {AdversaryKind::kRandom, LinkPlan::lossless(), {"clean"}},
      {AdversaryKind::kFifo, LinkPlan::duplicating(0.5, 2), {"clean"}},
      {AdversaryKind::kSplit, LinkPlan::replaying(0.3), {"clean"}},
      {AdversaryKind::kHeavyTail, storm, {"clean"}},
      {AdversaryKind::kRandom, LinkPlan::lossy(0.10), {"junk", 0, 0, 1, 0}},
      {AdversaryKind::kDelaySenders, LinkPlan::duplicating(0.3),
       {"silent", 0, 1, 0, 0}},
      {AdversaryKind::kRandom, LinkPlan::lossy(0.05),
       {"crash-recover", 0, 0, 0, 1}},
  };
  std::vector<RunOptions> grid;
  std::vector<std::string> labels;
  int idx = 0;
  for (const Sample& s : samples) {
    RunOptions options;
    options.protocol = Protocol::kBaWhp;
    options.n = 32;
    options.seed = 9100 + static_cast<std::uint64_t>(idx);
    options.adversary = s.adv;
    options.network = NetworkProfile::uniform(s.plan);
    options.silent = s.fault.silent;
    options.junk = s.fault.junk;
    options.crash_recover = s.fault.crash_recover;
    options.recover_after = 2000;
    options.inputs.assign(options.n, idx % 2 ? ba::kOne : ba::kZero);
    options.defer_verify = true;
    grid.push_back(options);
    options.defer_verify = false;
    grid.push_back(options);
    labels.push_back(case_label(Protocol::kBaWhp, s.adv, "equiv",
                                s.fault.name, options.seed));
    ++idx;
  }
  ThreadPool pool;
  std::vector<RunReport> reports = run_agreements_parallel(pool, grid);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const RunReport& deferred = reports[2 * i];
    const RunReport& direct = reports[2 * i + 1];
    SCOPED_TRACE(labels[i]);
    EXPECT_EQ(deferred.all_correct_decided, direct.all_correct_decided);
    EXPECT_EQ(deferred.decision, direct.decision);
    EXPECT_EQ(deferred.max_decided_round, direct.max_decided_round);
    EXPECT_EQ(deferred.correct_words, direct.correct_words);
    EXPECT_EQ(deferred.messages, direct.messages);
    EXPECT_EQ(deferred.duration, direct.duration);
    EXPECT_EQ(deferred.words_by_tag, direct.words_by_tag);
    // The deferred run exercised the signature batch plane; the direct
    // run never touched it.
    EXPECT_GT(deferred.sig_verify_sigs, 0u);
    EXPECT_EQ(direct.sig_verify_sigs, 0u);
    // Conservation holds under chaos too.
    EXPECT_EQ(deferred.verify_enqueued,
              deferred.verify_batch_flushed + deferred.verify_discarded);
  }
}

// Acceptance bar from the issue: ba-whp wrapped in the reliable channel
// must still DECIDE (not merely stay safe) at 20% drop with duplication
// enabled, with the repair overhead reported out of band.
TEST(ChaosSafety, BaWhpOverReliableChannelDecidesUnder20PctDrop) {
  LinkPlan plan;
  plan.drop_p = 0.20;
  plan.dup_p = 0.20;
  plan.max_duplicates = 2;
  RunOptions options;
  options.protocol = Protocol::kBaWhp;
  options.n = 32;
  options.seed = 424242;
  options.network = NetworkProfile::uniform(plan);
  options.reliable_channel = true;
  options.inputs.assign(options.n, ba::kOne);
  RunReport report = run_agreement(options);
  EXPECT_TRUE(report.all_correct_decided);
  EXPECT_TRUE(report.agreement);
  ASSERT_TRUE(report.decision.has_value());
  EXPECT_EQ(*report.decision, 1);
  EXPECT_GT(report.link_drops, 0u);
  EXPECT_GT(report.link_duplicates, 0u);
  EXPECT_GT(report.retransmits, 0u);
  EXPECT_GT(report.retransmit_words, 0u);
  // Repair overhead must be outside the paper's word complexity.
  EXPECT_GT(report.correct_words, 0u);
  // ISSUE 4 satellite: frames the channels abandoned mid-run must be
  // *visible* losses, never the pre-fix silent erase. At n=32 under 20%
  // loss they are plentiful — the RTO clock counts global delivery
  // events, so a congested queue exhausts a frame's retry budget even
  // when the original copy is merely slow, not lost. Exactly-once
  // delivery absorbed every abandoned frame (the decision above), and
  // the counters prove the losses were accounted.
  EXPECT_GT(report.dead_letters, 0u);
  EXPECT_GT(report.dead_letter_words, 0u);
  // Each abandoned frame was charged to correct_words once (plus its
  // retries to retransmit_words), so the loss accounting is bounded by
  // what actually went on the wire.
  EXPECT_LE(report.dead_letter_words,
            report.correct_words + report.retransmit_words);
}

// Duplicating/replaying links redeliver coin shares verbatim; the
// verified-share memo must answer those copies from cache instead of
// paying a second verification (the satellite invariant of the batch-
// verification PR). Memo hits show up in the run report.
TEST(ChaosSafety, DuplicatedSharesHitTheVerifyMemo) {
  LinkPlan noisy;
  noisy.dup_p = 0.5;
  noisy.max_duplicates = 2;
  noisy.replay_p = 0.3;
  RunOptions options;
  options.protocol = Protocol::kMmrWhpCoin;
  options.n = 40;
  options.seed = 31;
  options.adversary = AdversaryKind::kRandom;
  options.network = NetworkProfile::uniform(noisy);
  options.inputs.assign(options.n, ba::kZero);
  options.inputs[0] = ba::kOne;
  RunReport report = run_agreement(options);
  EXPECT_GT(report.verify_shares, 0u);
  // With a 50% duplication + 30% replay profile, re-delivered tuples are
  // plentiful — the memo must catch a healthy share of them.
  EXPECT_GT(report.verify_memo_hits, 0u);
}

// Identical seeds must reproduce identical runs even with every chaos
// feature enabled at once — link faults burn a dedicated Rng stream, so
// determinism survives the whole stack.
TEST(ChaosSafety, ChaoticRunsAreSeedDeterministic) {
  auto run = [] {
    LinkPlan storm;
    storm.drop_p = 0.15;
    storm.dup_p = 0.3;
    storm.max_duplicates = 2;
    storm.replay_p = 0.2;
    RunOptions options;
    options.protocol = Protocol::kBracha;
    options.n = 4;
    options.seed = 777;
    options.adversary = AdversaryKind::kHeavyTail;
    options.network = NetworkProfile::uniform(storm);
    options.crash_recover = 1;
    options.recover_after = 150;
    options.reliable_channel = true;
    options.inputs.assign(4, ba::kOne);
    return run_agreement(options);
  };
  RunReport a = run();
  RunReport b = run();
  EXPECT_EQ(a.all_correct_decided, b.all_correct_decided);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.correct_words, b.correct_words);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.link_drops, b.link_drops);
  EXPECT_EQ(a.link_duplicates, b.link_duplicates);
  EXPECT_EQ(a.link_replays, b.link_replays);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.retransmit_words, b.retransmit_words);
  EXPECT_EQ(a.words_by_tag, b.words_by_tag);
}

}  // namespace
}  // namespace coincidence::core
