// Safety hunt: a broad, deterministic sweep looking for agreement
// violations. The paper's protocol satisfies agreement only "whp"; a
// correct implementation should make violations so rare that NO run in
// this sweep exhibits one — any hit would be a bug (or a spectacular
// seed worth pinning). Covers every protocol, hostile schedulers and
// Byzantine mixes.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace coincidence::core {
namespace {

struct HuntCase {
  Protocol protocol;
  std::size_t n;
  int runs;
};

class SafetyHunt : public ::testing::TestWithParam<HuntCase> {};

TEST_P(SafetyHunt, NoAgreementViolationAcrossSweep) {
  const HuntCase& c = GetParam();
  const AdversaryKind kAdversaries[] = {AdversaryKind::kRandom,
                                        AdversaryKind::kDelaySenders,
                                        AdversaryKind::kSplit};
  int checked = 0;
  for (int run = 0; run < c.runs; ++run) {
    RunOptions o;
    o.protocol = c.protocol;
    o.n = c.n;
    o.seed = 0x5AFE7E57 + 31 * run;
    o.adversary = kAdversaries[run % 3];
    o.inputs.assign(c.n, ba::kZero);
    for (std::size_t i = 0; i < c.n / 2; ++i) o.inputs[i] = ba::kOne;
    // Byzantine load: rotate the mix with the run index.
    std::size_t budget = 0;
    {
      RunOptions probe = o;
      budget = run_agreement(probe).protocol_f;
    }
    o.crash = (run % 2) ? budget / 2 : 0;
    o.junk = (run % 2) ? budget - o.crash : budget;

    RunReport r = run_agreement(o);
    ++checked;
    EXPECT_TRUE(r.agreement)
        << protocol_name(c.protocol) << " n=" << c.n << " run=" << run
        << " adversary=" << adversary_name(o.adversary);
  }
  EXPECT_EQ(checked, c.runs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SafetyHunt,
    ::testing::Values(HuntCase{Protocol::kBenOr, 11, 9},
                      HuntCase{Protocol::kBracha, 10, 6},
                      HuntCase{Protocol::kMmrSharedCoin, 13, 9},
                      HuntCase{Protocol::kMmrDealerCoin, 13, 9},
                      HuntCase{Protocol::kMmrWhpCoin, 48, 6},
                      HuntCase{Protocol::kBaWhp, 48, 6},
                      HuntCase{Protocol::kBaWhp, 64, 4}),
    [](const auto& info) {
      std::string name = std::string(protocol_name(info.param.protocol)) +
                         "_n" + std::to_string(info.param.n);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace coincidence::core
