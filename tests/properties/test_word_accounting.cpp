// Word-accounting audit.
//
// Every bench result in EXPERIMENTS.md rests on the word counts protocols
// declare when sending (§2: a word holds a signature, a VRF output, or a
// finite-domain value). This suite runs each protocol with an observer
// that checks every message's declared count against the published
// schedule for its kind — so the complexity numbers cannot silently
// drift from the accounting the paper defines.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ba/ba_whp.h"
#include "ba/ben_or.h"
#include "ba/bracha.h"
#include "ba/mmr.h"
#include "coin/dealer_coin.h"
#include "coin/shared_coin.h"
#include "core/env.h"
#include "core/runner.h"
#include "sim/observer.h"
#include "sim/simulation.h"

namespace coincidence {
namespace {

/// Maps a tag's final component to the expected word count; -1 = unknown.
class WordAuditor final : public sim::Observer {
 public:
  explicit WordAuditor(std::map<std::string, std::size_t> schedule)
      : schedule_(std::move(schedule)) {}

  void on_send(const sim::Message& msg, bool sender_correct) override {
    if (!sender_correct) return;
    const std::string& tag = msg.tag.str();
    auto slash = tag.rfind('/');
    std::string kind =
        slash == std::string::npos ? tag : tag.substr(slash + 1);
    auto it = schedule_.find(kind);
    if (it == schedule_.end()) {
      unknown_kinds_.insert(kind);
      return;
    }
    ++audited_;
    if (msg.words != it->second)
      mismatches_.push_back(tag + ": declared " +
                            std::to_string(msg.words) + ", schedule " +
                            std::to_string(it->second));
  }

  std::size_t audited() const { return audited_; }
  const std::vector<std::string>& mismatches() const { return mismatches_; }
  const std::set<std::string>& unknown_kinds() const { return unknown_kinds_; }

 private:
  std::map<std::string, std::size_t> schedule_;
  std::size_t audited_ = 0;
  std::vector<std::string> mismatches_;
  std::set<std::string> unknown_kinds_;
};

TEST(WordAccounting, BaWhpMatchesPublishedSchedule) {
  core::Env env = core::Env::make_relaxed(48, 51);
  // §6.1 accounting: init = value + election proof; echo adds a
  // signature; ok = value + election proof + W (signature, election
  // proof) pairs; coin messages = value + VRF proof + election proof.
  auto auditor = std::make_shared<WordAuditor>(std::map<std::string, std::size_t>{
      {"init", 2},
      {"echo", 3},
      {"ok", 2 + 2 * env.params.W},
      {"first", 3},
      {"second", 3},
  });
  sim::SimConfig cfg;
  cfg.n = 48;
  cfg.seed = 3;
  sim::Simulation sim(cfg);
  sim.add_observer(auditor);
  for (crypto::ProcessId i = 0; i < 48; ++i) {
    ba::BaWhp::Config bcfg;
    bcfg.tag = "ba";
    bcfg.params = env.params;
    bcfg.vrf = env.vrf;
    bcfg.registry = env.registry;
    bcfg.sampler = env.sampler;
    bcfg.signer = env.signer;
    sim.add_process(
        std::make_unique<ba::BaWhp>(bcfg, i < 24 ? ba::kOne : ba::kZero));
  }
  sim.start();
  sim.run_until([&] {
    for (crypto::ProcessId i = 0; i < 48; ++i)
      if (!dynamic_cast<ba::BaProcess&>(sim.process(i)).decided())
        return false;
    return true;
  });
  EXPECT_GT(auditor->audited(), 1000u);
  EXPECT_TRUE(auditor->mismatches().empty())
      << auditor->mismatches().front();
  EXPECT_TRUE(auditor->unknown_kinds().empty())
      << *auditor->unknown_kinds().begin();
}

TEST(WordAccounting, BaselinesMatchPublishedSchedules) {
  struct Case {
    core::Protocol protocol;
    std::size_t n;
    std::map<std::string, std::size_t> schedule;
  };
  const std::vector<Case> cases = {
      // Ben-Or: every message carries one finite-domain value.
      {core::Protocol::kBenOr, 11, {{"R", 1}, {"P", 1}}},
      // Bracha over RBC: initial carries the length-prefixed value
      // (1 word + 1 byte-word for the 1-byte BA payload); echo adds the
      // source id; ready ships source + the λ-word sha256 digest instead
      // of the payload.
      {core::Protocol::kBracha, 10, {{"initial", 2}, {"echo", 3}, {"ready", 5}}},
      // MMR + Algorithm-1 coin: bval/aux one value; coin = value + proof.
      {core::Protocol::kMmrSharedCoin, 13,
       {{"bval", 1}, {"aux", 1}, {"first", 2}, {"second", 2}}},
      // Rabin dealer: a share + the dealer's tag.
      {core::Protocol::kMmrDealerCoin, 13,
       {{"bval", 1}, {"aux", 1}, {"share", 2}}},
  };
  for (const Case& c : cases) {
    auto auditor = std::make_shared<WordAuditor>(c.schedule);
    // Drive through the public runner's construction by rebuilding the
    // same protocol stack manually with the observer attached.
    core::Env env = core::Env::make_relaxed(c.n, 52);
    std::size_t f = c.protocol == core::Protocol::kBenOr ? (c.n - 1) / 5
                                                         : (c.n - 1) / 3;
    auto dealer =
        std::make_shared<coin::DealerCoinSetup>(c.n, f, 64, 7);
    sim::SimConfig cfg;
    cfg.n = c.n;
    cfg.seed = 4;
    sim::Simulation sim(cfg);
    sim.add_observer(auditor);
    for (crypto::ProcessId i = 0; i < c.n; ++i) {
      ba::Value input = i % 2 ? ba::kOne : ba::kZero;
      switch (c.protocol) {
        case core::Protocol::kBenOr: {
          ba::BenOr::Config bc;
          bc.n = c.n;
          bc.f = f;
          sim.add_process(std::make_unique<ba::BenOr>(bc, input));
          break;
        }
        case core::Protocol::kBracha: {
          ba::Bracha::Config bc;
          bc.n = c.n;
          bc.f = f;
          sim.add_process(std::make_unique<ba::Bracha>(bc, input));
          break;
        }
        default: {
          ba::Mmr::Config mc;
          mc.tag = "mmr";
          mc.n = c.n;
          mc.f = f;
          bool shared = c.protocol == core::Protocol::kMmrSharedCoin;
          mc.make_coin = [&env, c, f, shared, dealer](
                             std::uint64_t round, const std::string& tag)
              -> std::unique_ptr<coin::CoinProtocol> {
            if (shared) {
              coin::SharedCoin::Config cc;
              cc.tag = tag;
              cc.round = round;
              cc.n = c.n;
              cc.f = f;
              cc.vrf = env.vrf;
              cc.registry = env.registry;
              return std::make_unique<coin::SharedCoin>(cc);
            }
            coin::DealerCoin::Config cc;
            cc.tag = tag;
            cc.round = round;
            cc.setup = dealer;
            return std::make_unique<coin::DealerCoin>(cc);
          };
          sim.add_process(std::make_unique<ba::Mmr>(mc, input));
          break;
        }
      }
    }
    sim.start();
    sim.run_until([&] {
      for (crypto::ProcessId i = 0; i < c.n; ++i)
        if (!dynamic_cast<ba::BaProcess&>(sim.process(i)).decided())
          return false;
      return true;
    });
    EXPECT_GT(auditor->audited(), 50u) << core::protocol_name(c.protocol);
    EXPECT_TRUE(auditor->mismatches().empty())
        << core::protocol_name(c.protocol) << ": "
        << auditor->mismatches().front();
    EXPECT_TRUE(auditor->unknown_kinds().empty())
        << core::protocol_name(c.protocol) << ": "
        << *auditor->unknown_kinds().begin();
  }
}

TEST(WordAccounting, BrachaEcRbcMatchesPublishedSchedule) {
  // The erasure-coded dissemination backend, audited at n=8 (a perfect
  // Merkle tree, so every branch is exactly log2(8) = 3 digests):
  //   initial = size word + ⌈⌈|v|/k⌉/8⌉ fragment words + λ·3 branch words
  //   echo    = source word + λ root words + fragment + λ·3 branch words
  //   ready   = source word + λ composite-digest words.
  // The 1-byte BA payload at k = f+1 = 3 gives 1-byte fragments.
  const std::size_t n = 8, f = 2;
  auto auditor =
      std::make_shared<WordAuditor>(std::map<std::string, std::size_t>{
          {"initial", 1 + 1 + 4 * 3},
          {"echo", 1 + 4 + 1 + 4 * 3},
          {"ready", 1 + 4},
      });
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = 6;
  sim::Simulation sim(cfg);
  sim.add_observer(auditor);
  for (crypto::ProcessId i = 0; i < n; ++i) {
    ba::Bracha::Config bc;
    bc.n = n;
    bc.f = f;
    bc.rbc = ba::RbcBackend::kEc;
    sim.add_process(
        std::make_unique<ba::Bracha>(bc, i % 2 ? ba::kOne : ba::kZero));
  }
  sim.start();
  sim.run_until([&] {
    for (crypto::ProcessId i = 0; i < n; ++i)
      if (!dynamic_cast<ba::BaProcess&>(sim.process(i)).decided())
        return false;
    return true;
  });
  EXPECT_GT(auditor->audited(), 50u);
  EXPECT_TRUE(auditor->mismatches().empty()) << auditor->mismatches().front();
  EXPECT_TRUE(auditor->unknown_kinds().empty())
      << *auditor->unknown_kinds().begin();
}

}  // namespace
}  // namespace coincidence
