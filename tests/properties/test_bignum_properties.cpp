// Property-based sweeps over the bignum: algebraic laws checked on
// randomized operands across a grid of bit widths. These are the
// invariants the whole crypto stack rests on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/prime.h"

namespace coincidence::crypto {
namespace {

class BignumWidth : public ::testing::TestWithParam<std::size_t> {
 protected:
  Bignum random_bignum(Rng& rng) {
    std::size_t bytes = 1 + rng.next_below(GetParam() / 8);
    return Bignum::from_bytes_be(rng.next_bytes(bytes));
  }
};

TEST_P(BignumWidth, AdditionCommutesAndAssociates) {
  Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 50; ++i) {
    Bignum a = random_bignum(rng), b = random_bignum(rng), c = random_bignum(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST_P(BignumWidth, SubtractionInvertsAddition) {
  Rng rng(GetParam() * 31 + 2);
  for (int i = 0; i < 50; ++i) {
    Bignum a = random_bignum(rng), b = random_bignum(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BignumWidth, MultiplicationDistributes) {
  Rng rng(GetParam() * 31 + 3);
  for (int i = 0; i < 30; ++i) {
    Bignum a = random_bignum(rng), b = random_bignum(rng), c = random_bignum(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(BignumWidth, DivisionIdentity) {
  Rng rng(GetParam() * 31 + 4);
  for (int i = 0; i < 50; ++i) {
    Bignum u = random_bignum(rng), v = random_bignum(rng);
    if (v.is_zero()) continue;
    DivMod dm = divmod(u, v);
    EXPECT_EQ(dm.quotient * v + dm.remainder, u);
    EXPECT_TRUE(dm.remainder < v);
  }
}

TEST_P(BignumWidth, ShiftsAreMulDivByPowersOfTwo) {
  Rng rng(GetParam() * 31 + 5);
  for (int i = 0; i < 30; ++i) {
    Bignum a = random_bignum(rng);
    std::size_t k = rng.next_below(100);
    EXPECT_EQ(a << k, a * (Bignum(1) << k));
    EXPECT_EQ(a >> k, a / (Bignum(1) << k));
  }
}

TEST_P(BignumWidth, BytesRoundTrip) {
  Rng rng(GetParam() * 31 + 6);
  for (int i = 0; i < 50; ++i) {
    Bignum a = random_bignum(rng);
    EXPECT_EQ(Bignum::from_bytes_be(a.to_bytes_be()), a);
    EXPECT_EQ(Bignum::from_hex(a.to_hex()), a);
  }
}

TEST_P(BignumWidth, ModExpLawsOverPrimeField) {
  // Work modulo a prime near the parameter width.
  SafePrime sp = generate_safe_prime(std::min<std::size_t>(GetParam(), 96),
                                     GetParam());
  const Bignum& p = sp.p;
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 10; ++i) {
    Bignum a = random_bignum(rng) % p;
    if (a.is_zero()) continue;
    Bignum x = random_bignum(rng);
    Bignum y = random_bignum(rng);
    // a^(x+y) == a^x * a^y  (mod p)
    EXPECT_EQ(Bignum::mod_exp(a, x + y, p),
              Bignum::mul_mod(Bignum::mod_exp(a, x, p),
                              Bignum::mod_exp(a, y, p), p));
    // (a^x)^y == a^(x*y)  (mod p)
    EXPECT_EQ(Bignum::mod_exp(Bignum::mod_exp(a, x, p), y, p),
              Bignum::mod_exp(a, x * y, p));
  }
}

TEST_P(BignumWidth, ModInvIsInverse) {
  SafePrime sp = generate_safe_prime(std::min<std::size_t>(GetParam(), 96),
                                     GetParam() + 1);
  const Bignum& p = sp.p;
  Rng rng(GetParam() * 31 + 8);
  for (int i = 0; i < 20; ++i) {
    Bignum a = random_bignum(rng) % p;
    if (a.is_zero()) continue;
    EXPECT_EQ(Bignum::mul_mod(a, Bignum::mod_inv(a, p), p), Bignum(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BignumWidth,
                         ::testing::Values(16, 64, 128, 256, 512, 1024),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace coincidence::crypto

namespace coincidence::crypto {
namespace {

// Karatsuba kicks in above ~24 limbs (1536 bits); verify it agrees with
// the schoolbook path bit-for-bit across the threshold, including the
// asymmetric and carry-heavy cases.
class KaratsubaEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KaratsubaEquivalence, MatchesReferenceViaDivision) {
  // (a*b) / b == a and (a*b) % b == 0 exercise the product against the
  // independently-implemented Knuth-D division.
  Rng rng(GetParam() * 7 + 5);
  for (int i = 0; i < 20; ++i) {
    Bignum a = Bignum::from_bytes_be(rng.next_bytes(GetParam()));
    Bignum b = Bignum::from_bytes_be(rng.next_bytes(1 + rng.next_below(GetParam())));
    if (a.is_zero() || b.is_zero()) continue;
    Bignum prod = a * b;
    EXPECT_EQ(prod / b, a);
    EXPECT_TRUE((prod % b).is_zero());
    EXPECT_EQ(prod, b * a);  // commutativity across asymmetric splits
  }
}

TEST_P(KaratsubaEquivalence, CarrySaturatedOperands) {
  // All-ones operands maximize carries: (2^k - 1)^2 = 2^2k - 2^(k+1) + 1.
  std::size_t bytes = GetParam();
  Bignum ones = (Bignum(1) << (bytes * 8)) - Bignum(1);
  Bignum sq = ones * ones;
  Bignum expect = (Bignum(1) << (2 * bytes * 8)) -
                  (Bignum(1) << (bytes * 8 + 1)) + Bignum(1);
  EXPECT_EQ(sq, expect);
}

INSTANTIATE_TEST_SUITE_P(AroundThreshold, KaratsubaEquivalence,
                         ::testing::Values(64, 128, 191, 192, 193, 256, 384,
                                           512, 1024),
                         [](const auto& info) {
                           return "bytes" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace coincidence::crypto
