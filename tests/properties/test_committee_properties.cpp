// Property sweeps over committee sampling: for a grid of (n, d), the
// empirical S1–S4 failure rates must respect the Chernoff bounds of
// Appendix A, and the S5/S6 subset-intersection corollaries must hold on
// every S1-passing committee (they are arithmetic consequences of S1).
#include <gtest/gtest.h>

#include <cmath>

#include "committee/params.h"
#include "core/env.h"

namespace coincidence::committee {
namespace {

struct SamplingCase {
  std::size_t n;
  double d;
};

class SamplingGrid : public ::testing::TestWithParam<SamplingCase> {};

TEST_P(SamplingGrid, ChernoffBoundsAndCorollaries) {
  const SamplingCase& c = GetParam();
  core::Env env = core::Env::make(c.n, 0.25, c.d, 31 + c.n, /*strict=*/false);
  const Params& p = env.params;
  const std::size_t f = p.f;
  const int kCommittees = 400;

  int s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  for (int k = 0; k < kCommittees; ++k) {
    std::string seed = "prop-" + std::to_string(k);
    std::size_t size = 0, byz = 0;
    for (std::size_t i = 0; i < c.n; ++i) {
      if (!env.sampler->sample(static_cast<crypto::ProcessId>(i), seed)
               .sampled)
        continue;
      ++size;
      if (i >= c.n - f) ++byz;
    }
    bool s1_holds = static_cast<double>(size) <= (1.0 + p.d) * p.lambda;
    s1 += !s1_holds;
    s2 += static_cast<double>(size) < (1.0 - p.d) * p.lambda;
    s3 += (size - byz) < p.W;
    s4 += byz > p.B;

    if (s1_holds && size >= p.W) {
      // S5: two W-subsets of the committee intersect in >= B+1 members.
      ASSERT_GE(2 * p.W, size);
      EXPECT_GE(2 * p.W - size, p.B + 1) << "committee " << k;
      // S6: a (B+1)-subset meets every W-subset.
      EXPECT_GT(p.B + 1 + p.W, size) << "committee " << k;
    }
  }

  auto rate = [&](int fails) {
    return static_cast<double>(fails) / kCommittees;
  };
  // Chernoff upper bounds + a 3-sigma sampling allowance.
  auto sigma = [&](double bound) {
    double clamped = std::min(std::max(bound, 1e-6), 1.0);
    return 3.0 * std::sqrt(clamped * (1.0 - clamped) / kCommittees);
  };
  double b1 = s1_failure_bound(p.lambda, p.d);
  double b2 = s2_failure_bound(p.lambda, p.d);
  double b3 = s3_failure_bound(p.lambda, p.d, p.epsilon);
  double b4 = s4_failure_bound(p.lambda, p.d, p.epsilon);
  EXPECT_LE(rate(s1), std::min(1.0, b1 + sigma(b1)));
  EXPECT_LE(rate(s2), std::min(1.0, b2 + sigma(b2)));
  EXPECT_LE(rate(s3), std::min(1.0, b3 + sigma(b3)));
  EXPECT_LE(rate(s4), std::min(1.0, b4 + sigma(b4)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplingGrid,
    ::testing::Values(SamplingCase{64, 0.02}, SamplingCase{64, 0.05},
                      SamplingCase{128, 0.02}, SamplingCase{128, 0.05},
                      SamplingCase{256, 0.05}, SamplingCase{512, 0.05},
                      SamplingCase{512, 0.08}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(static_cast<int>(info.param.d * 100));
    });

class EpsilonWindowGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EpsilonWindowGrid, DerivedParamsInternallyConsistent) {
  std::size_t n = GetParam();
  Window ew = epsilon_window(n);
  if (!ew.feasible()) GTEST_SKIP() << "epsilon window empty at n=" << n;
  for (double frac : {0.1, 0.5, 0.9}) {
    double eps = ew.lo + frac * (ew.hi - ew.lo);
    Window dw = d_window(n, eps);
    if (!dw.feasible()) continue;
    Params p = Params::derive(n, eps, dw.midpoint());
    // Structural invariants the proofs rely on.
    EXPECT_GT(p.W, p.B);                       // waiting proves something
    EXPECT_GT(p.W, 2 * p.B - p.B);             // W > B
    EXPECT_LT(static_cast<double>(p.W), p.lambda * (1.0 + p.d));  // reachable under S1
    EXPECT_LE(p.f, n / 3);
    // S5 arithmetic at the S1 boundary: 2W - (1+d)λ >= B+1.
    EXPECT_GE(2.0 * static_cast<double>(p.W) - (1.0 + p.d) * p.lambda,
              static_cast<double>(p.B) + 1.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EpsilonWindowGrid,
                         ::testing::Values(32, 64, 128, 256, 1024, 16384),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace coincidence::committee
