// Property sweeps over all agreement protocols: the three BA properties
// (validity / agreement / termination) across a grid of protocols, input
// splits, adversaries and fault mixes.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace coincidence::core {
namespace {

struct BaGridCase {
  Protocol protocol;
  std::size_t n;
  std::size_t ones;  // processes proposing 1
  AdversaryKind adversary;
  std::size_t crash, silent, junk;
  int runs;
  int min_decided;  // of runs (whp tail allowance)
};

class BaGrid : public ::testing::TestWithParam<BaGridCase> {};

TEST_P(BaGrid, AgreementValidityTermination) {
  const BaGridCase& c = GetParam();
  int decided = 0;
  for (int run = 0; run < c.runs; ++run) {
    RunOptions o;
    o.protocol = c.protocol;
    o.n = c.n;
    o.adversary = c.adversary;
    o.crash = c.crash;
    o.silent = c.silent;
    o.junk = c.junk;
    o.seed = 0xba5e + 977 * run + c.n + static_cast<int>(c.protocol);
    o.inputs.assign(c.n, ba::kZero);
    for (std::size_t i = 0; i < c.ones; ++i) o.inputs[i] = ba::kOne;

    RunReport r = run_agreement(o);
    // Agreement must hold among whoever decided, in every run.
    EXPECT_TRUE(r.agreement) << "run " << run;
    if (!r.all_correct_decided) continue;
    ++decided;
    ASSERT_TRUE(r.decision.has_value());
    // Validity: unanimous inputs (among all n — corrupted ones sit on the
    // high ids and might hold either value, so only assert when ALL
    // inputs agree) force that decision.
    if (c.ones == 0) EXPECT_EQ(*r.decision, 0) << "run " << run;
    if (c.ones == c.n) EXPECT_EQ(*r.decision, 1) << "run " << run;
  }
  EXPECT_GE(decided, c.min_decided);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaGrid,
    ::testing::Values(
        // --- validity probes: unanimous inputs, every protocol ---
        BaGridCase{Protocol::kBenOr, 12, 0, AdversaryKind::kRandom, 1, 1, 0, 5, 5},
        BaGridCase{Protocol::kBenOr, 12, 12, AdversaryKind::kSplit, 0, 2, 0, 5, 5},
        BaGridCase{Protocol::kBracha, 10, 0, AdversaryKind::kRandom, 1, 1, 1, 4, 4},
        BaGridCase{Protocol::kBracha, 10, 10, AdversaryKind::kDelaySenders, 0, 0, 3, 4, 4},
        BaGridCase{Protocol::kMmrSharedCoin, 13, 0, AdversaryKind::kRandom, 2, 1, 1, 5, 5},
        BaGridCase{Protocol::kMmrSharedCoin, 13, 13, AdversaryKind::kFifo, 0, 4, 0, 5, 5},
        BaGridCase{Protocol::kMmrDealerCoin, 13, 0, AdversaryKind::kSplit, 1, 2, 1, 5, 5},
        BaGridCase{Protocol::kMmrDealerCoin, 13, 13, AdversaryKind::kRandom, 0, 0, 4, 5, 5},
        BaGridCase{Protocol::kBaWhp, 72, 0, AdversaryKind::kRandom, 2, 1, 1, 4, 2},
        BaGridCase{Protocol::kBaWhp, 72, 72, AdversaryKind::kDelaySenders, 0, 2, 2, 4, 2},
        // --- split inputs: agreement + termination under hostility ---
        BaGridCase{Protocol::kBenOr, 16, 8, AdversaryKind::kDelaySenders, 0, 0, 0, 4, 4},
        BaGridCase{Protocol::kBracha, 13, 6, AdversaryKind::kSplit, 0, 0, 0, 3, 3},
        BaGridCase{Protocol::kMmrSharedCoin, 16, 8, AdversaryKind::kDelaySenders, 1, 1, 1, 5, 5},
        BaGridCase{Protocol::kMmrDealerCoin, 16, 8, AdversaryKind::kSplit, 1, 1, 1, 5, 5},
        BaGridCase{Protocol::kBaWhp, 64, 32, AdversaryKind::kRandom, 1, 1, 1, 4, 3},
        BaGridCase{Protocol::kBaWhp, 64, 32, AdversaryKind::kSplit, 0, 0, 0, 4, 3}),
    [](const auto& info) {
      const BaGridCase& c = info.param;
      std::string name = std::string(protocol_name(c.protocol)) + "_n" +
                         std::to_string(c.n) + "_ones" +
                         std::to_string(c.ones) + "_" +
                         adversary_name(c.adversary) +
                         std::to_string(c.crash + c.silent + c.junk);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace coincidence::core
