// Decoder fuzzing: every protocol's message handlers are fed random
// byte-strings, random-length truncations of honest payloads, and
// bit-flipped honest payloads at every tag the protocol listens on.
// Invariants: no crash, no exception escaping the handler, and the
// protocol still completes correctly afterwards (Byzantine garbage is
// dropped, never wedges a correct process).
#include <gtest/gtest.h>

#include "ba/ba_whp.h"
#include "ba/ben_or.h"
#include "ba/bracha.h"
#include "ba/mmr.h"
#include "coin/dealer_coin.h"
#include "coin/shared_coin.h"
#include "coin/whp_coin.h"
#include "common/rng.h"
#include "common/ser.h"
#include "core/env.h"
#include "core/runner.h"
#include "net/reliable_process.h"
#include "sim/simulation.h"

namespace coincidence {
namespace {

/// Tags each protocol family listens on, relative to its run_agreement
/// instance naming.
std::vector<std::string> tags_for(core::Protocol p) {
  switch (p) {
    case core::Protocol::kBenOr:
      return {"benor/0/R", "benor/0/P", "benor/1/R", "benor/7/P"};
    case core::Protocol::kBracha:
      return {"bracha/0/1/initial", "bracha/0/1/echo", "bracha/0/1/ready",
              "bracha/0/2/echo", "bracha/1/3/ready"};
    case core::Protocol::kMmrSharedCoin:
      return {"mmr/0/bval", "mmr/0/aux", "mmr/0/coin/first",
              "mmr/0/coin/second", "mmr/1/bval"};
    case core::Protocol::kMmrWhpCoin:
      return {"mmrw/0/bval", "mmrw/0/aux", "mmrw/0/coin/first",
              "mmrw/0/coin/second"};
    case core::Protocol::kBaWhp:
      return {"ba/0/a1/init", "ba/0/a1/echo", "ba/0/a1/ok",
              "ba/0/coin/first", "ba/0/coin/second", "ba/0/a2/init",
              "ba/1/a1/init", "ba/0/a1/unknown", "not-even-a-tag"};
    case core::Protocol::kMmrDealerCoin:
      return {"rabin/0/bval", "rabin/0/aux", "rabin/0/coin/share"};
  }
  return {};
}

class FuzzGrid : public ::testing::TestWithParam<core::Protocol> {};

TEST_P(FuzzGrid, RandomPayloadsNeverWedgeTheProtocol) {
  core::Protocol protocol = GetParam();
  std::size_t n = std::max<std::size_t>(core::min_n_for(protocol),
                                        protocol == core::Protocol::kBaWhp ||
                                                protocol ==
                                                    core::Protocol::kMmrWhpCoin
                                            ? 48
                                            : 10);

  // Use the public runner to set the stage, then re-run manually with an
  // injection phase: we need direct Simulation access for inject().
  core::RunOptions probe;
  probe.protocol = protocol;
  probe.n = n;
  probe.inputs.assign(n, ba::kOne);

  // Build manually so we can inject mid-run.
  // (run_agreement has no injection hook by design — fuzzing is a test
  // concern, not an experiment concern.)
  core::Env env = core::Env::make_relaxed(n, 77);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 1;
  cfg.seed = 99;
  sim::Simulation sim(cfg);

  // Reuse the runner's construction logic through a minimal local copy:
  // simplest faithful approach is to instantiate via run-options on the
  // same env... instead, fuzz through the runner-built protocols by
  // running the public API for the happy path and, separately, fuzzing a
  // directly-built BaWhp/Mmr/etc. Here: direct build.
  auto build = [&](sim::ProcessId, ba::Value input)
      -> std::unique_ptr<sim::Process> {
    switch (protocol) {
      case core::Protocol::kBenOr: {
        ba::BenOr::Config c;
        c.n = n;
        c.f = (n - 1) / 5;
        return std::make_unique<ba::BenOr>(c, input);
      }
      case core::Protocol::kBracha: {
        ba::Bracha::Config c;
        c.n = n;
        c.f = (n - 1) / 3;
        return std::make_unique<ba::Bracha>(c, input);
      }
      case core::Protocol::kMmrSharedCoin:
      case core::Protocol::kMmrDealerCoin:
      case core::Protocol::kMmrWhpCoin: {
        ba::Mmr::Config c;
        c.tag = protocol == core::Protocol::kMmrSharedCoin ? "mmr"
                : protocol == core::Protocol::kMmrWhpCoin ? "mmrw"
                                                          : "rabin";
        c.n = n;
        c.f = (n - 1) / 3;
        auto setup = std::make_shared<coin::DealerCoinSetup>(n, (n - 1) / 3,
                                                             256, 4);
        c.make_coin = [&env, n, protocol, setup](std::uint64_t round,
                                                 const std::string& tag)
            -> std::unique_ptr<coin::CoinProtocol> {
          if (protocol == core::Protocol::kMmrSharedCoin) {
            coin::SharedCoin::Config cc;
            cc.tag = tag;
            cc.round = round;
            cc.n = n;
            cc.f = (n - 1) / 3;
            cc.vrf = env.vrf;
            cc.registry = env.registry;
            return std::make_unique<coin::SharedCoin>(cc);
          }
          if (protocol == core::Protocol::kMmrWhpCoin) {
            coin::WhpCoin::Config cc;
            cc.tag = tag;
            cc.round = round;
            cc.params = env.params;
            cc.vrf = env.vrf;
            cc.registry = env.registry;
            cc.sampler = env.sampler;
            return std::make_unique<coin::WhpCoin>(cc);
          }
          coin::DealerCoin::Config cc;
          cc.tag = tag;
          cc.round = round;
          cc.setup = setup;
          return std::make_unique<coin::DealerCoin>(cc);
        };
        return std::make_unique<ba::Mmr>(c, input);
      }
      case core::Protocol::kBaWhp: {
        ba::BaWhp::Config c;
        c.tag = "ba";
        c.params = env.params;
        c.vrf = env.vrf;
        c.registry = env.registry;
        c.sampler = env.sampler;
        c.signer = env.signer;
        return std::make_unique<ba::BaWhp>(c, input);
      }
    }
    return nullptr;
  };

  for (sim::ProcessId i = 0; i < n; ++i) sim.add_process(build(i, ba::kOne));
  sim::ProcessId attacker = static_cast<sim::ProcessId>(n - 1);
  sim.corrupt(attacker, sim::FaultPlan::silent());
  sim.start();

  // Fuzz barrage: random bytes of many shapes at every listened-on tag.
  Rng rng(0xF077u ^ static_cast<unsigned>(protocol));
  for (const std::string& tag : tags_for(protocol)) {
    for (int shape = 0; shape < 12; ++shape) {
      std::size_t len = rng.next_below(96);
      Bytes payload = rng.next_bytes(len);
      sim.inject(attacker, static_cast<sim::ProcessId>(rng.next_below(n - 1)),
                 tag, payload, 1);
    }
  }

  // No crash so far; the protocol must still decide 1 (validity).
  ASSERT_NO_THROW(sim.run_until([&] {
    for (sim::ProcessId i = 0; i + 1 < n; ++i)
      if (!dynamic_cast<ba::BaProcess&>(sim.process(i)).decided())
        return false;
    return true;
  }));
  std::size_t decided_one = 0, decided_total = 0;
  for (sim::ProcessId i = 0; i + 1 < n; ++i) {
    auto& p = dynamic_cast<ba::BaProcess&>(sim.process(i));
    if (p.decided()) {
      ++decided_total;
      decided_one += p.decision() == 1;
    }
  }
  EXPECT_EQ(decided_one, decided_total);        // validity survives fuzz
  EXPECT_GE(decided_total, (n - 1) * 9 / 10);   // liveness (whp allowance)
}

// The reliable channel adds two new wire formats ("net/dat", "net/ack");
// per the repo rule, new message kinds get fuzz rows. Byzantine peers can
// aim raw garbage, truncations, forged acks and well-formed frames
// wrapping garbage at the channel — none of it may crash the decoder or
// wedge the wrapped protocol.
TEST(FuzzDecoders, ReliableChannelFramesNeverWedgeTheProtocol) {
  const std::size_t n = 4;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.f = 1;
  cfg.seed = 0xF0;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < n; ++i) {
    ba::Bracha::Config c;
    c.n = n;
    c.f = 1;
    sim.add_process(std::make_unique<net::ReliableProcess>(
        std::make_unique<ba::Bracha>(c, ba::kOne)));
  }
  sim::ProcessId attacker = static_cast<sim::ProcessId>(n - 1);
  sim.corrupt(attacker, sim::FaultPlan::silent());
  sim.start();

  Rng rng(0xF0F0);
  for (int shape = 0; shape < 24; ++shape) {
    sim::ProcessId victim =
        static_cast<sim::ProcessId>(rng.next_below(n - 1));
    // Raw garbage at both channel tags.
    sim.inject(attacker, victim, shape % 2 ? "net/dat" : "net/ack",
               rng.next_bytes(rng.next_below(64)), 1);
    // Forged acks for sequence numbers the victim never sent to us.
    Writer ack;
    ack.u64(rng.next_u64());
    sim.inject(attacker, victim, "net/ack", ack.take(), 1);
    // Well-formed data frames wrapping garbage: the channel must deliver
    // them (they decode fine) and the inner protocol must shrug them off.
    Writer dat;
    dat.u64(rng.next_u64())
        .str("bracha/0/1/echo")
        .u64(1)
        .blob(rng.next_bytes(rng.next_below(48)));
    sim.inject(attacker, victim, "net/dat", dat.take(), 2);
  }

  ASSERT_NO_THROW(sim.run_until([&] {
    for (sim::ProcessId i = 0; i + 1 < n; ++i) {
      auto& rp = dynamic_cast<net::ReliableProcess&>(sim.process(i));
      if (!dynamic_cast<ba::BaProcess&>(rp.inner()).decided()) return false;
    }
    return true;
  }));
  for (sim::ProcessId i = 0; i + 1 < n; ++i) {
    auto& rp = dynamic_cast<net::ReliableProcess&>(sim.process(i));
    auto& p = dynamic_cast<ba::BaProcess&>(rp.inner());
    ASSERT_TRUE(p.decided()) << i;
    EXPECT_EQ(p.decision(), 1) << i;  // validity survives the barrage
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, FuzzGrid,
    ::testing::ValuesIn(core::all_protocols()),
    [](const auto& info) {
      std::string name = core::protocol_name(info.param);
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace coincidence
