// In-flight protocol invariants, checked by a passive Observer while the
// protocols run — properties the paper's proofs rely on but that no
// output-level assertion would catch if silently violated.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ba/ba_whp.h"
#include "ba/value.h"
#include "coin/whp_coin.h"
#include "common/rng.h"
#include "core/env.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace coincidence {
namespace {

/// Counts sends per (sender, tag) for correct senders.
class SendCounter final : public sim::Observer {
 public:
  void on_send(const sim::Message& msg, bool sender_correct) override {
    if (!sender_correct) return;
    // Broadcasts fan out into n point-to-point sends of one logical
    // message; count each logical broadcast once via the first recipient.
    if (msg.to == 0) ++counts_[{msg.from, msg.tag.str()}];
  }

  /// Max broadcasts by any single correct sender under one tag.
  std::size_t max_per_sender_tag() const {
    std::size_t max = 0;
    for (const auto& [key, count] : counts_) max = std::max(max, count);
    return max;
  }

  const std::map<std::pair<sim::ProcessId, std::string>, std::size_t>&
  counts() const {
    return counts_;
  }

 private:
  std::map<std::pair<sim::ProcessId, std::string>, std::size_t> counts_;
};

TEST(Invariants, ProcessReplaceability_OneBroadcastPerCommitteeRole) {
  // §6.1: "a correct process selected for a committee C broadcasts at
  // most one message in its role as a member of C". Run a full BA and
  // verify no correct process ever broadcast twice under any tag.
  core::Env env = core::Env::make_relaxed(48, 31);
  sim::SimConfig cfg;
  cfg.n = 48;
  cfg.seed = 9;
  sim::Simulation sim(cfg);
  auto counter = std::make_shared<SendCounter>();
  sim.add_observer(counter);
  for (crypto::ProcessId i = 0; i < 48; ++i) {
    ba::BaWhp::Config bcfg;
    bcfg.tag = "ba";
    bcfg.params = env.params;
    bcfg.vrf = env.vrf;
    bcfg.registry = env.registry;
    bcfg.sampler = env.sampler;
    bcfg.signer = env.signer;
    sim.add_process(
        std::make_unique<ba::BaWhp>(bcfg, i < 24 ? ba::kOne : ba::kZero));
  }
  sim.start();
  sim.run_until([&] {
    for (crypto::ProcessId i = 0; i < 48; ++i)
      if (!dynamic_cast<ba::BaProcess&>(sim.process(i)).decided())
        return false;
    return true;
  });
  for (const auto& [key, count] : counter->counts()) {
    const auto& [sender, tag] = key;
    // The echo wire tag multiplexes TWO committee roles — echo(0) and
    // echo(1) use distinct committees precisely so that each role still
    // broadcasts at most once (§6.1); every other tag is a single role.
    std::size_t allowed = tag.size() >= 5 &&
                          tag.compare(tag.size() - 5, 5, "/echo") == 0
                              ? 2
                              : 1;
    EXPECT_LE(count, allowed) << "process " << sender << " tag " << tag;
  }
}

TEST(Invariants, WhpCoinSendersAreExactlyCommitteeMembers) {
  core::Env env = core::Env::make_relaxed(64, 32);
  sim::SimConfig cfg;
  cfg.n = 64;
  cfg.seed = 10;
  sim::Simulation sim(cfg);
  auto counter = std::make_shared<SendCounter>();
  sim.add_observer(counter);
  for (crypto::ProcessId i = 0; i < 64; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 0;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = env.sampler;
    sim.add_process(std::make_unique<coin::CoinHost>(
        std::make_unique<coin::WhpCoin>(ccfg)));
  }
  sim.start();
  sim.run();

  for (const auto& [key, count] : counter->counts()) {
    const auto& [sender, tag] = key;
    EXPECT_EQ(count, 1u) << sender << " " << tag;
    if (tag == "coin/first")
      EXPECT_TRUE(env.sampler->sample(sender, "coin/first").sampled) << sender;
    if (tag == "coin/second")
      EXPECT_TRUE(env.sampler->sample(sender, "coin/second").sampled) << sender;
  }
}

TEST(Invariants, TraceRecorderCapturesAndFilters) {
  core::Env env = core::Env::make_relaxed(40, 33);
  sim::SimConfig cfg;
  cfg.n = 40;
  cfg.f = 1;
  cfg.seed = 11;
  sim::Simulation sim(cfg);
  auto all = std::make_shared<sim::TraceRecorder>();
  auto firsts = std::make_shared<sim::TraceRecorder>("first");
  sim.add_observer(all);
  sim.add_observer(firsts);
  for (crypto::ProcessId i = 0; i < 40; ++i) {
    coin::WhpCoin::Config ccfg;
    ccfg.tag = "coin";
    ccfg.round = 0;
    ccfg.params = env.params;
    ccfg.vrf = env.vrf;
    ccfg.registry = env.registry;
    ccfg.sampler = env.sampler;
    sim.add_process(std::make_unique<coin::CoinHost>(
        std::make_unique<coin::WhpCoin>(ccfg)));
  }
  sim.corrupt(39, sim::FaultPlan::silent());
  sim.start();
  sim.run();

  EXPECT_GT(all->size(), firsts->size());
  EXPECT_GT(firsts->size(), 0u);
  for (const auto& e : firsts->events())
    if (e.kind != sim::TraceRecorder::Event::Kind::kCorrupt)
      EXPECT_NE(e.tag.find("first"), std::string::npos);
  // The corruption was recorded (by the unfiltered recorder).
  bool saw_corrupt = false;
  for (const auto& e : all->events())
    if (e.kind == sim::TraceRecorder::Event::Kind::kCorrupt) {
      saw_corrupt = true;
      EXPECT_EQ(e.from, 39u);
      EXPECT_EQ(e.tag, "silent");
    }
  EXPECT_TRUE(saw_corrupt);

  // Deterministic replay: same seeds => identical trace.
  std::ostringstream dump_a;
  all->dump(dump_a);
  EXPECT_FALSE(dump_a.str().empty());
}

TEST(Invariants, TraceIsIdenticalAcrossReplays) {
  auto run_once = [](std::uint64_t seed) {
    core::Env env = core::Env::make_relaxed(32, 34);
    sim::SimConfig cfg;
    cfg.n = 32;
    cfg.seed = seed;
    sim::Simulation sim(cfg);
    auto trace = std::make_shared<sim::TraceRecorder>();
    sim.add_observer(trace);
    for (crypto::ProcessId i = 0; i < 32; ++i) {
      coin::WhpCoin::Config ccfg;
      ccfg.tag = "coin";
      ccfg.round = 0;
      ccfg.params = env.params;
      ccfg.vrf = env.vrf;
      ccfg.registry = env.registry;
      ccfg.sampler = env.sampler;
      sim.add_process(std::make_unique<coin::CoinHost>(
          std::make_unique<coin::WhpCoin>(ccfg)));
    }
    sim.start();
    sim.run();
    std::ostringstream os;
    trace->dump(os);
    return os.str();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

}  // namespace
}  // namespace coincidence

namespace coincidence {
namespace {

TEST(Invariants, ReplaceabilityMakesAdaptiveHuntingWorthless) {
  // A LEGAL adaptive adversary corrupts every revealed committee member
  // (silencing it) the moment its message is delivered — the attack
  // process replaceability (§6.1) is designed to defeat. At n = 64 with
  // the full budget f, committee-liveness whp-failures are common for ANY
  // post-start corruption pattern (the guarantee is asymptotic), so the
  // meaningful claim is comparative: hunting revealed members decides no
  // less often than silencing the same number of arbitrary processes, and
  // agreement holds in every run either way.
  const std::size_t n = 64;
  auto run_once = [&](std::uint64_t seed, bool hunter, int& decided_runs) {
    core::Env env = core::Env::make_relaxed(n, 41);
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.f = env.params.f;
    cfg.seed = seed;
    sim::Simulation sim(cfg);
    if (hunter)
      sim.set_adversary(std::make_unique<sim::CommitteeHunterAdversary>(
          "", sim::FaultPlan::silent()));
    for (crypto::ProcessId i = 0; i < n; ++i) {
      ba::BaWhp::Config bcfg;
      bcfg.tag = "ba";
      bcfg.params = env.params;
      bcfg.vrf = env.vrf;
      bcfg.registry = env.registry;
      bcfg.sampler = env.sampler;
      bcfg.signer = env.signer;
      sim.add_process(
          std::make_unique<ba::BaWhp>(bcfg, i % 2 ? ba::kOne : ba::kZero));
    }
    sim.start();
    if (!hunter) {
      // Baseline: the same budget spent on arbitrary ids after start.
      Rng pick(seed * 131);
      while (sim.corrupted_count() < env.params.f) {
        auto id = static_cast<crypto::ProcessId>(pick.next_below(n));
        if (!sim.is_corrupted(id)) sim.corrupt(id, sim::FaultPlan::silent());
      }
    }
    sim.run_until([&] {
      for (crypto::ProcessId i = 0; i < n; ++i) {
        if (sim.is_corrupted(i)) continue;
        if (!dynamic_cast<ba::BaProcess&>(sim.process(i)).decided())
          return false;
      }
      return true;
    });

    // Agreement among decided correct processes: must hold ALWAYS.
    std::optional<int> bit;
    bool all = true;
    for (crypto::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      auto& p = dynamic_cast<ba::BaProcess&>(sim.process(i));
      if (!p.decided()) {
        all = false;
        continue;
      }
      if (!bit) bit = p.decision();
      EXPECT_EQ(*bit, p.decision()) << "seed " << seed;
    }
    if (all) ++decided_runs;
    EXPECT_EQ(sim.corrupted_count(), env.params.f);
  };

  const int kRuns = 8;
  int hunter_decided = 0, random_decided = 0;
  for (int run = 0; run < kRuns; ++run) {
    run_once(100 + run, /*hunter=*/true, hunter_decided);
    run_once(100 + run, /*hunter=*/false, random_decided);
  }
  // Adaptivity must not beat blind corruption by more than noise — and
  // both modes decide in a solid majority of runs.
  EXPECT_GE(hunter_decided + 2, random_decided);
  EXPECT_GE(hunter_decided, kRuns / 2);
  EXPECT_GE(random_decided, kRuns / 2);
}

}  // namespace
}  // namespace coincidence
