// Property sweeps over the coin protocols: liveness and agreement
// invariants across a (n, faults, adversary) grid, all deterministic.
#include <gtest/gtest.h>

#include "core/coin_runner.h"

namespace coincidence::core {
namespace {

struct CoinGridCase {
  CoinKind kind;
  std::size_t n;
  std::size_t silent;
  std::size_t delay_senders;
  int runs;
  // Minimum acceptable counts out of `runs` (calibrated generously; the
  // sweep is deterministic, so these either always hold or regress).
  int min_returned;
  int min_agreed;
};

class CoinGrid : public ::testing::TestWithParam<CoinGridCase> {};

TEST_P(CoinGrid, LivenessAndAgreementAcrossSeeds) {
  const CoinGridCase& c = GetParam();
  int returned = 0, agreed = 0;
  for (int run = 0; run < c.runs; ++run) {
    CoinOptions o;
    o.kind = c.kind;
    o.n = c.n;
    o.silent = c.silent;
    o.delay_senders = c.delay_senders;
    o.seed = 0x5eed + 101 * run + c.n;
    o.round = static_cast<std::uint64_t>(run);
    CoinReport r = run_coin_trial(o);
    returned += r.all_returned;
    agreed += r.agreed_bit.has_value();
    // Safety invariant: whoever returned, outputs are bits.
    for (const auto& out : r.outputs)
      if (out) EXPECT_TRUE(*out == 0 || *out == 1);
  }
  EXPECT_GE(returned, c.min_returned);
  EXPECT_GE(agreed, c.min_agreed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoinGrid,
    ::testing::Values(
        // shared coin: full participation, always live
        CoinGridCase{CoinKind::kShared, 16, 0, 0, 20, 20, 18},
        CoinGridCase{CoinKind::kShared, 16, 1, 0, 20, 20, 18},
        CoinGridCase{CoinKind::kShared, 48, 3, 0, 12, 12, 10},
        CoinGridCase{CoinKind::kShared, 48, 0, 12, 12, 12, 10},
        CoinGridCase{CoinKind::kShared, 96, 7, 0, 8, 8, 7},
        // whp coin: committee-based, liveness only whp
        CoinGridCase{CoinKind::kWhp, 48, 0, 0, 20, 16, 14},
        CoinGridCase{CoinKind::kWhp, 96, 0, 0, 12, 10, 9},
        CoinGridCase{CoinKind::kWhp, 96, 3, 0, 12, 10, 9},
        CoinGridCase{CoinKind::kWhp, 96, 0, 24, 12, 10, 9},
        CoinGridCase{CoinKind::kWhp, 192, 0, 0, 8, 7, 6},
        // dealer coin: perfect
        CoinGridCase{CoinKind::kDealer, 16, 1, 0, 20, 20, 20},
        CoinGridCase{CoinKind::kDealer, 64, 5, 0, 10, 10, 10}),
    [](const auto& info) {
      const CoinGridCase& c = info.param;
      return std::string(coin_name(c.kind) == std::string("shared-coin")
                             ? "shared"
                             : coin_name(c.kind) == std::string("whp-coin")
                                   ? "whp"
                                   : "dealer") +
             "_n" + std::to_string(c.n) + "_s" + std::to_string(c.silent) +
             "_d" + std::to_string(c.delay_senders);
    });

}  // namespace
}  // namespace coincidence::core
