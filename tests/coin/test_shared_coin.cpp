#include "coin/shared_coin.h"

#include <gtest/gtest.h>

#include "coin_harness.h"
#include "committee/params.h"
#include "common/errors.h"
#include "common/ser.h"
#include "crypto/fast_vrf.h"

namespace coincidence::coin {
namespace {

using testing::CoinRunResult;
using testing::CoinRunSpec;
using testing::run_coin;

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t key_seed = 42)
      : n(n),
        registry(crypto::KeyRegistry::create_for(n, key_seed)),
        vrf(std::make_shared<crypto::FastVrf>(registry)) {}

  testing::CoinFactory factory(std::size_t f, std::uint64_t round) const {
    return [this, f, round](crypto::ProcessId) {
      SharedCoin::Config cfg;
      cfg.tag = "coin/" + std::to_string(round);
      cfg.round = round;
      cfg.n = n;
      cfg.f = f;
      cfg.vrf = vrf;
      cfg.registry = registry;
      return std::make_unique<SharedCoin>(cfg);
    };
  }

  std::size_t n;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::FastVrf> vrf;
};

TEST(SharedCoin, AllCorrectProcessesReturnFaultFree) {
  Fixture fx(8);
  CoinRunSpec spec;
  spec.n = 8;
  CoinRunResult r = run_coin(spec, fx.factory(/*f=*/2, /*round=*/0));
  std::vector<bool> corrupted(8, false);
  EXPECT_TRUE(r.all_returned(corrupted));
  auto bit = r.unanimous(corrupted);
  ASSERT_TRUE(bit.has_value());  // fault-free FIFO-ish runs always agree
  EXPECT_TRUE(*bit == 0 || *bit == 1);
}

TEST(SharedCoin, TerminatesWithMaxCrashFaults) {
  // Lemma 4.11: liveness with up to f faulty processes.
  Fixture fx(10);
  CoinRunSpec spec;
  spec.n = 10;
  spec.f_budget = 3;
  spec.corruptions = {{0, sim::FaultPlan::crash()},
                      {1, sim::FaultPlan::silent()},
                      {2, sim::FaultPlan::crash()}};
  CoinRunResult r = run_coin(spec, fx.factory(/*f=*/3, /*round=*/1));
  std::vector<bool> corrupted(10, false);
  corrupted[0] = corrupted[1] = corrupted[2] = true;
  EXPECT_TRUE(r.all_returned(corrupted));
}

TEST(SharedCoin, JunkSendersDoNotBlockOrCrash) {
  Fixture fx(10);
  CoinRunSpec spec;
  spec.n = 10;
  spec.f_budget = 3;
  spec.corruptions = {{4, sim::FaultPlan::junk()},
                      {7, sim::FaultPlan::junk()}};
  CoinRunResult r = run_coin(spec, fx.factory(/*f=*/3, /*round=*/2));
  std::vector<bool> corrupted(10, false);
  corrupted[4] = corrupted[7] = true;
  EXPECT_TRUE(r.all_returned(corrupted));
}

TEST(SharedCoin, AgreementRateMeetsPaperBoundFaultFree) {
  // Theorem 4.13 with ε = 1/3 (f = 0): success rate >= 1/2 per bit value,
  // i.e. the processes agree in every run with probability ~1 here
  // because with f=0 every process waits for all n firsts. Check both
  // agreement and rough balance of the output bit.
  Fixture fx(8);
  int agree = 0;
  int ones = 0;
  const int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    CoinRunSpec spec;
    spec.n = 8;
    spec.seed = 1000 + run;
    CoinRunResult r = run_coin(spec, fx.factory(/*f=*/0, /*round=*/run));
    std::vector<bool> corrupted(8, false);
    auto bit = r.unanimous(corrupted);
    if (bit) {
      ++agree;
      ones += *bit;
    }
  }
  EXPECT_EQ(agree, kRuns);  // f=0: everyone folds the same n values
  EXPECT_GT(ones, kRuns / 4);
  EXPECT_LT(ones, 3 * kRuns / 4);
}

TEST(SharedCoin, AgreementRateUnderAdversarialSchedulingMeetsBound) {
  // n=16, f=1 ≈ (1/3−ε)n with ε≈0.27: analytic success rate per value of b
  // is (18ε²+24ε−1)/(6(1+6ε)) ≈ 0.42; agreement (either b) >= 2*0.42.
  // Random asynchrony should comfortably beat that.
  Fixture fx(16);
  int agree = 0;
  const int kRuns = 150;
  for (int run = 0; run < kRuns; ++run) {
    CoinRunSpec spec;
    spec.n = 16;
    spec.seed = 5000 + run;
    CoinRunResult r = run_coin(spec, fx.factory(/*f=*/1, /*round=*/run));
    if (r.unanimous(std::vector<bool>(16, false))) ++agree;
  }
  double rate = static_cast<double>(agree) / kRuns;
  double bound = 2.0 * committee::coin_success_lower_bound(1.0 / 3.0 - 1.0 / 16.0);
  EXPECT_GE(rate, bound);
}

TEST(SharedCoin, WordComplexityIsTwoBroadcastRounds) {
  Fixture fx(12);
  CoinRunSpec spec;
  spec.n = 12;
  CoinRunResult r = run_coin(spec, fx.factory(/*f=*/0, /*round=*/3));
  // 2 phases * n senders * n receivers * 2 words.
  EXPECT_EQ(r.correct_words, 2u * 12u * 12u * 2u);
}

TEST(SharedCoin, DurationIsConstantDepth) {
  Fixture fx(12);
  CoinRunSpec spec;
  spec.n = 12;
  CoinRunResult r = run_coin(spec, fx.factory(/*f=*/3, /*round=*/4));
  // The minimal chain is first -> second (depth 2); asynchrony can chain
  // through other processes' seconds (a process may observe a depth-2
  // second before emitting its own), so the depth is a small constant,
  // not exactly 2. The bench rounds_to_decide checks it stays flat in n.
  EXPECT_GE(r.duration, 2u);
  EXPECT_LE(r.duration, 8u);
}

// -- adversarial-input robustness ----------------------------------------

class ForgedValueEnv : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 6;
  ForgedValueEnv()
      : registry_(crypto::KeyRegistry::create_for(kN, 9)),
        vrf_(std::make_shared<crypto::FastVrf>(registry_)) {}

  std::unique_ptr<SharedCoin> make_coin(std::size_t f) const {
    SharedCoin::Config cfg;
    cfg.tag = "coin/0";
    cfg.round = 0;
    cfg.n = kN;
    cfg.f = f;
    cfg.vrf = vrf_;
    cfg.registry = registry_;
    return std::make_unique<SharedCoin>(cfg);
  }

  std::shared_ptr<crypto::KeyRegistry> registry_;
  std::shared_ptr<crypto::FastVrf> vrf_;
};

TEST_F(ForgedValueEnv, ForgedMinimumIsIgnored) {
  // A Byzantine process injects a <second> carrying an all-zero "minimum"
  // with a junk proof: every correct process must discard it.
  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  cfg.seed = 3;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < kN; ++i)
    sim.add_process(std::make_unique<CoinHost>(make_coin(1)));
  sim.corrupt(5, sim::FaultPlan::silent());
  sim.start();

  Writer w;
  w.blob(Bytes(32, 0)).u32(2).blob(bytes_of("fake-proof"));
  for (crypto::ProcessId to = 0; to < kN - 1; ++to)
    sim.inject(5, to, "coin/0/second", w.bytes(), 2);
  sim.run();

  for (crypto::ProcessId i = 0; i < kN - 1; ++i) {
    const auto& host = dynamic_cast<CoinHost&>(sim.process(i));
    ASSERT_TRUE(host.coin().done());
    const auto& coin = dynamic_cast<const SharedCoin&>(host.coin());
    EXPECT_NE(coin.current_min_value(), Bytes(32, 0));
  }
}

TEST_F(ForgedValueEnv, FirstMessageMustCarrySendersOwnValue) {
  // Byzantine 5 replays process 0's (valid) VRF value as its own <first>:
  // receivers must reject origin != sender for firsts.
  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.f = 1;
  cfg.seed = 4;
  sim::Simulation sim(cfg);
  std::vector<SharedCoin*> coins;
  for (crypto::ProcessId i = 0; i < kN; ++i) {
    auto coin = make_coin(1);
    coins.push_back(coin.get());
    sim.add_process(std::make_unique<CoinHost>(std::move(coin)));
  }
  sim.corrupt(5, sim::FaultPlan::silent());
  sim.start();

  Writer inp;
  inp.str("shared-coin").u64(0);
  crypto::VrfOutput honest = vrf_->eval(registry_->sk_of(0), inp.bytes());
  Writer w;
  w.blob(honest.value).u32(0).blob(honest.proof);
  sim.inject(5, 1, "coin/0/first", w.bytes(), 2);
  sim.run();

  // Process 1 never counted the replay: its first-set reached n-f = 5
  // from senders {0,1,2,3,4} only, and the run completed.
  EXPECT_TRUE(coins[1]->done());
}

TEST_F(ForgedValueEnv, OutputBeforeDoneThrows) {
  auto coin = make_coin(1);
  EXPECT_THROW(coin->output(), PreconditionError);
}

TEST_F(ForgedValueEnv, RejectsBadConfig) {
  SharedCoin::Config cfg;
  cfg.tag = "c";
  cfg.round = 0;
  cfg.n = 4;
  cfg.f = 2;  // n - f <= f: quorum intersection impossible
  cfg.vrf = vrf_;
  cfg.registry = registry_;
  EXPECT_THROW(SharedCoin{cfg}, PreconditionError);
  cfg.f = 1;
  cfg.vrf = nullptr;
  EXPECT_THROW(SharedCoin{cfg}, PreconditionError);
}

TEST_F(ForgedValueEnv, DoneCallbackFiresExactlyOnce) {
  sim::SimConfig cfg;
  cfg.n = kN;
  cfg.seed = 8;
  sim::Simulation sim(cfg);
  int fired = 0;
  for (crypto::ProcessId i = 0; i < kN; ++i) {
    SharedCoin::Config ccfg;
    ccfg.tag = "coin/0";
    ccfg.round = 0;
    ccfg.n = kN;
    ccfg.f = 1;
    ccfg.vrf = vrf_;
    ccfg.registry = registry_;
    auto coin = std::make_unique<SharedCoin>(
        ccfg, i == 0 ? [&fired](int) { ++fired; } : SharedCoin::DoneFn{});
    sim.add_process(std::make_unique<CoinHost>(std::move(coin)));
  }
  sim.start();
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SharedCoinProperty, MinimumWinsUnderFifo) {
  // With FIFO scheduling and f=0 every process receives every first
  // before any second threshold is hit, so the output must be the LSB of
  // the global minimum VRF value — check across rounds.
  Fixture fx(9);
  Writer inp;
  for (std::uint64_t round = 0; round < 20; ++round) {
    // Compute expected global min offline.
    Writer w;
    w.str("shared-coin").u64(round);
    Bytes min_value;
    for (crypto::ProcessId i = 0; i < 9; ++i) {
      auto out = fx.vrf->eval(fx.registry->sk_of(i), w.bytes());
      if (min_value.empty() || out.value < min_value) min_value = out.value;
    }
    int expected = min_value.back() & 1;

    CoinRunSpec spec;
    spec.n = 9;
    spec.seed = round;
    spec.adversary = [] { return std::make_unique<sim::FifoAdversary>(); };
    CoinRunResult r = run_coin(spec, fx.factory(/*f=*/0, round));
    auto bit = r.unanimous(std::vector<bool>(9, false));
    ASSERT_TRUE(bit.has_value()) << "round " << round;
    EXPECT_EQ(*bit, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace coincidence::coin
