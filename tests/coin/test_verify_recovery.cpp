// Deferred verification (coin/verify_queue.h) under crash-recovery and
// re-delivery — the ISSUE satellites around the BatchVerifier:
//
//  * Queue-ledger conservation: enqueued == batch_flushed + discarded on
//    every run. A crash-recovery destroys the live coin's pending queue
//    (settled as discarded-unverified) and a share re-delivered into a
//    retired round must NOT re-enter a fresh PendingVerifyQueue — either
//    failure mode breaks the ledger, so the equality is the regression
//    oracle.
//  * Verdict stability: re-delivered shares hit the verified-share memo
//    or re-verify to the same verdict; deferring verification changes no
//    decision, word or message count even under crash-recovery + replay
//    links (bit-identical to the inline-verification run).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/runner.h"
#include "sim/link.h"

namespace coincidence::core {
namespace {

using sim::LinkPlan;
using sim::NetworkProfile;

RunOptions recovery_options(Protocol protocol, std::size_t n,
                            std::uint64_t seed) {
  RunOptions o;
  o.protocol = protocol;
  o.n = n;
  o.seed = seed;
  o.check_invariants = true;
  o.inputs.assign(n, seed % 2 ? ba::kOne : ba::kZero);
  o.expected_decision = static_cast<int>(seed % 2);
  o.crash_recover = 1;
  o.recover_after = 32 * n;  // restart lands mid-protocol, not post-run
  return o;
}

void expect_ledger_balanced(const RunReport& r, const std::string& label) {
  EXPECT_EQ(r.verify_enqueued, r.verify_batch_flushed + r.verify_discarded)
      << label << ": enqueued=" << r.verify_enqueued
      << " flushed=" << r.verify_batch_flushed
      << " discarded=" << r.verify_discarded;
}

// The conservation law across a spread of crash-recover runs on both
// VRF-backed protocols. Every deferred share is eventually flushed to
// the batch verifier or explicitly settled as discarded-unverified when
// its round retires — recovery neither loses nor double-counts.
TEST(VerifyRecovery, QueueLedgerBalancesAcrossCrashRecovery) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunOptions o = recovery_options(Protocol::kMmrSharedCoin, 4, seed);
    RunReport r = run_agreement(o);
    const std::string label = "mmr-vrf-coin/seed=" + std::to_string(seed);
    expect_ledger_balanced(r, label);
    EXPECT_TRUE(r.invariant_violations.empty()) << label;
    EXPECT_GT(r.verify_enqueued, 0u) << label;  // deferral actually ran
  }
  RunOptions o = recovery_options(Protocol::kBaWhp, 32, 3);
  RunReport r = run_agreement(o);
  expect_ledger_balanced(r, "ba-whp/seed=3");
  EXPECT_TRUE(r.invariant_violations.empty());
  EXPECT_TRUE(r.all_correct_decided);
  EXPECT_GT(r.verify_enqueued, 0u);
}

// A crash-recovery landing in a retired round must not re-admit stale
// shares: replay-heavy links re-deliver pre-crash coin shares after the
// restart, and each one must either hit the verified-share memo or be
// dropped by the round gate — never enqueue into a fresh queue for a
// finished round. The balanced ledger plus a clean invariant slate is
// exactly that assertion, made on a link profile built to re-deliver.
TEST(VerifyRecovery, RedeliveredSharesAfterRecoveryKeepLedgerExact) {
  LinkPlan noisy;
  noisy.dup_p = 0.4;
  noisy.max_duplicates = 2;
  noisy.replay_p = 0.3;
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    RunOptions o = recovery_options(Protocol::kMmrSharedCoin, 4, seed);
    o.network = NetworkProfile::uniform(noisy);
    RunReport r = run_agreement(o);
    const std::string label = "redelivery/seed=" + std::to_string(seed);
    expect_ledger_balanced(r, label);
    EXPECT_TRUE(r.invariant_violations.empty()) << label;
    EXPECT_TRUE(r.agreement) << label;
  }
}

// Verdict stability: deferring verification must change nothing but the
// verify_* counters, even when a crash-recovery and a replaying link
// conspire to re-deliver shares into restarted state. Decisions, rounds,
// words and messages are bit-identical to the inline-verification run,
// and no honest share is ever rejected on either path.
TEST(VerifyRecovery, DeferredVerdictsMatchInlineUnderCrashRecovery) {
  LinkPlan noisy;
  noisy.dup_p = 0.5;
  noisy.max_duplicates = 2;
  noisy.replay_p = 0.3;
  for (std::uint64_t seed = 31; seed <= 33; ++seed) {
    RunOptions deferred = recovery_options(Protocol::kMmrWhpCoin, 32, seed);
    deferred.network = NetworkProfile::uniform(noisy);
    RunOptions inline_verify = deferred;
    inline_verify.defer_verify = false;

    RunReport a = run_agreement(deferred);
    RunReport b = run_agreement(inline_verify);
    const std::string label = "verdicts/seed=" + std::to_string(seed);

    EXPECT_EQ(a.all_correct_decided, b.all_correct_decided) << label;
    EXPECT_EQ(a.decision, b.decision) << label;
    EXPECT_EQ(a.max_decided_round, b.max_decided_round) << label;
    EXPECT_EQ(a.correct_words, b.correct_words) << label;
    EXPECT_EQ(a.messages, b.messages) << label;
    EXPECT_EQ(a.words_by_tag, b.words_by_tag) << label;

    // The deferred run really deferred; the inline run really didn't.
    EXPECT_GT(a.verify_enqueued, 0u) << label;
    EXPECT_EQ(b.verify_enqueued, 0u) << label;
    expect_ledger_balanced(a, label);
    // Honest shares re-delivered verbatim answer from the memo (or
    // re-verify to the same accepting verdict): zero rejects on both
    // paths is the "verdicts bit-identical" claim in counter form.
    EXPECT_EQ(a.verify_rejects, 0u) << label;
    EXPECT_EQ(b.verify_rejects, 0u) << label;
    EXPECT_GT(a.verify_memo_hits, 0u) << label;
  }
}

// The ledger law extended to SIGNATURE entries: ba-whp's approver defers
// its W-signature ok sweeps through the same shared BatchVerifier, so a
// crash-recovery that destroys an approver's pending-ok queue settles
// those oks as discarded — the conservation equality must keep holding
// with approver traffic folded in, and the signature plane must actually
// have run (flushes, HMAC checks and cross-receiver memo hits all > 0).
TEST(VerifyRecovery, SignatureLedgerBalancesAcrossCrashRecovery) {
  for (std::uint64_t seed : {3ULL, 11ULL}) {
    RunOptions o = recovery_options(Protocol::kBaWhp, 32, seed);
    RunReport r = run_agreement(o);
    const std::string label = "ba-whp-sig/seed=" + std::to_string(seed);
    expect_ledger_balanced(r, label);
    EXPECT_TRUE(r.invariant_violations.empty()) << label;
    EXPECT_TRUE(r.all_correct_decided) << label;
    // The signature batch plane really ran...
    EXPECT_GT(r.sig_verify_flushes, 0u) << label;
    EXPECT_GT(r.sig_verify_sigs, 0u) << label;
    // ...and the memo collapsed repeats: every ok embeds the SAME W
    // signed echoes, and echo-phase checks share the memo, so hits
    // dominate (each broadcast triple verifies ~once run-wide).
    EXPECT_GT(r.sig_memo_hits * 2, r.sig_checks) << label;
    // Honest-only run: deferral rejects nothing.
    EXPECT_EQ(r.sig_verify_rejects, 0u) << label;
  }
}

// Memoized vs direct signature verdicts stay bit-identical for ba-whp
// even when crash-recovery replays the approver mid-protocol: decision,
// rounds, words and messages match the inline-verification run exactly,
// and only the deferred run touches the signature batch counters.
TEST(VerifyRecovery, BaWhpDeferredSigVerdictsMatchInlineUnderRecovery) {
  for (std::uint64_t seed : {5ULL, 8ULL}) {
    RunOptions deferred = recovery_options(Protocol::kBaWhp, 32, seed);
    RunOptions inline_verify = deferred;
    inline_verify.defer_verify = false;

    RunReport a = run_agreement(deferred);
    RunReport b = run_agreement(inline_verify);
    const std::string label = "ba-whp-verdicts/seed=" + std::to_string(seed);

    EXPECT_EQ(a.all_correct_decided, b.all_correct_decided) << label;
    EXPECT_EQ(a.decision, b.decision) << label;
    EXPECT_EQ(a.max_decided_round, b.max_decided_round) << label;
    EXPECT_EQ(a.correct_words, b.correct_words) << label;
    EXPECT_EQ(a.messages, b.messages) << label;
    EXPECT_EQ(a.words_by_tag, b.words_by_tag) << label;

    EXPECT_GT(a.sig_verify_sigs, 0u) << label;
    EXPECT_EQ(b.sig_verify_sigs, 0u) << label;
    EXPECT_EQ(a.sig_verify_rejects, 0u) << label;
    expect_ledger_balanced(a, label);
  }
}

// Same-seed determinism of the ledger itself: two identical crash-recover
// runs produce identical verify counters (the queue is on the delivery
// clock, not wall clock).
TEST(VerifyRecovery, LedgerCountersAreSeedDeterministic) {
  RunOptions o = recovery_options(Protocol::kMmrSharedCoin, 4, 9);
  RunReport a = run_agreement(o);
  RunReport b = run_agreement(o);
  EXPECT_EQ(a.verify_enqueued, b.verify_enqueued);
  EXPECT_EQ(a.verify_batch_flushed, b.verify_batch_flushed);
  EXPECT_EQ(a.verify_discarded, b.verify_discarded);
  EXPECT_EQ(a.verify_flushes, b.verify_flushes);
  EXPECT_EQ(a.verify_memo_hits, b.verify_memo_hits);
}

}  // namespace
}  // namespace coincidence::core
