// Strict-parameter (paper-window) operation of the WHP coin.
//
// All other protocol tests use the relaxed small-n parameters; this suite
// exercises Params::derive_auto — ε and d at their §2/§5.1 window
// midpoints — to document how the protocol behaves when run exactly as
// analyzed. At n in the hundreds the strict windows produce a W very
// close to the expected correct committee size, so liveness is only
// moderately probable per instance; the assertions below encode that
// honestly instead of hiding it.
#include <gtest/gtest.h>

#include "coin/whp_coin.h"
#include "core/env.h"
#include "sim/simulation.h"

namespace coincidence::coin {
namespace {

struct StrictOutcome {
  int returned = 0;
  int agreed = 0;
  int runs = 0;
};

StrictOutcome run_strict(std::size_t n, int runs, std::uint64_t seed) {
  core::Env env = core::Env::make_auto(n, seed);
  StrictOutcome out;
  out.runs = runs;
  for (int run = 0; run < runs; ++run) {
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.seed = seed * 131 + run;
    sim::Simulation sim(cfg);
    for (crypto::ProcessId i = 0; i < n; ++i) {
      WhpCoin::Config ccfg;
      ccfg.tag = "strict/" + std::to_string(run);
      ccfg.round = static_cast<std::uint64_t>(run);
      ccfg.params = env.params;
      ccfg.vrf = env.vrf;
      ccfg.registry = env.registry;
      ccfg.sampler = env.sampler;
      sim.add_process(std::make_unique<CoinHost>(
          std::make_unique<WhpCoin>(ccfg)));
    }
    sim.start();
    sim.run();

    bool all = true;
    std::optional<int> bit;
    bool agree = true;
    for (crypto::ProcessId i = 0; i < n; ++i) {
      const auto& coin = dynamic_cast<CoinHost&>(sim.process(i)).coin();
      if (!coin.done()) {
        all = false;
        break;
      }
      if (!bit) bit = coin.output();
      if (*bit != coin.output()) agree = false;
    }
    if (all) {
      ++out.returned;
      if (agree) ++out.agreed;
    }
  }
  return out;
}

TEST(WhpCoinStrictParams, ParametersSitInsidePaperWindows) {
  for (std::size_t n : {100, 200, 400}) {
    core::Env env = core::Env::make_auto(n, 3);
    committee::Window ew = committee::epsilon_window(n);
    committee::Window dw = committee::d_window(n, env.params.epsilon);
    EXPECT_TRUE(ew.contains(env.params.epsilon)) << n;
    EXPECT_TRUE(dw.contains(env.params.d)) << n;
    EXPECT_GE(env.params.epsilon, 0.109);  // the paper's constant
    EXPECT_GE(env.params.d, 0.0362);
  }
}

TEST(WhpCoinStrictParams, LivenessIsModerateAtMidWindow) {
  // Mid-window d makes W nearly the whole expected correct committee:
  // liveness per instance is a coin toss at n=200 and improves with n —
  // the honest reading of "whp" at these sizes.
  StrictOutcome small = run_strict(200, 12, 5);
  EXPECT_GT(small.returned, 0);
  EXPECT_GE(small.agreed, small.returned - 1);  // agreement when live
}

TEST(WhpCoinStrictParams, LowEdgeDRestoresLiveness) {
  // Same strict ε, but d at the *low* edge of its window: W drops and
  // liveness recovers — the d trade-off of §5.1 in action.
  const std::size_t n = 200;
  committee::Window ew = committee::epsilon_window(n);
  double eps = ew.midpoint();
  committee::Window dw = committee::d_window(n, eps);
  core::Env env = core::Env::make(n, eps, dw.lo + 1e-4, 11, /*strict=*/true);

  int returned = 0;
  const int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.seed = 400 + run;
    sim::Simulation sim(cfg);
    for (crypto::ProcessId i = 0; i < n; ++i) {
      WhpCoin::Config ccfg;
      ccfg.tag = "edge/" + std::to_string(run);
      ccfg.round = static_cast<std::uint64_t>(run);
      ccfg.params = env.params;
      ccfg.vrf = env.vrf;
      ccfg.registry = env.registry;
      ccfg.sampler = env.sampler;
      sim.add_process(std::make_unique<CoinHost>(
          std::make_unique<WhpCoin>(ccfg)));
    }
    sim.start();
    sim.run();
    bool all = true;
    for (crypto::ProcessId i = 0; i < n; ++i)
      if (!dynamic_cast<CoinHost&>(sim.process(i)).coin().done()) all = false;
    returned += all;
  }
  EXPECT_GE(returned, kRuns * 7 / 10);
}

}  // namespace
}  // namespace coincidence::coin
