#include "coin/whp_coin.h"

#include <gtest/gtest.h>

#include "coin_harness.h"
#include "common/errors.h"
#include "common/ser.h"
#include "crypto/fast_vrf.h"

namespace coincidence::coin {
namespace {

using testing::CoinRunResult;
using testing::CoinRunSpec;
using testing::run_coin;

// Everything in these tests is deterministic (seeded), so statistical
// assertions are stable: a given seed set either passes forever or fails
// forever. Small-n runs use the paper's formulas with relaxed lower-bound
// constants (Params strict=false), as catalogued in DESIGN.md §6.
struct Fixture {
  Fixture(std::size_t n, double epsilon, double d, std::uint64_t key_seed = 77)
      : params(committee::Params::derive(n, epsilon, d, /*strict=*/false)),
        registry(crypto::KeyRegistry::create_for(n, key_seed)),
        vrf(std::make_shared<crypto::FastVrf>(registry)),
        sampler(std::make_shared<committee::Sampler>(vrf, registry,
                                                     params.sample_prob())) {}

  testing::CoinFactory factory(std::uint64_t round) const {
    return [this, round](crypto::ProcessId) {
      WhpCoin::Config cfg;
      cfg.tag = "whp/" + std::to_string(round);
      cfg.round = round;
      cfg.params = params;
      cfg.vrf = vrf;
      cfg.registry = registry;
      cfg.sampler = sampler;
      return std::make_unique<WhpCoin>(cfg);
    };
  }

  committee::Params params;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::FastVrf> vrf;
  std::shared_ptr<committee::Sampler> sampler;
};

TEST(WhpCoin, TerminatesAndAgreesOnTypicalRun) {
  Fixture fx(60, 0.25, 0.02);
  CoinRunSpec spec;
  spec.n = 60;
  spec.seed = 11;
  CoinRunResult r = run_coin(spec, fx.factory(0));
  std::vector<bool> corrupted(60, false);
  ASSERT_TRUE(r.all_returned(corrupted));
  auto bit = r.unanimous(corrupted);
  ASSERT_TRUE(bit.has_value());
  EXPECT_TRUE(*bit == 0 || *bit == 1);
}

TEST(WhpCoin, LivenessRateHighAcrossRounds) {
  // Claim 1 S3 is "whp": count termination failures across 60 rounds.
  Fixture fx(60, 0.25, 0.02);
  int returned = 0;
  const int kRuns = 60;
  for (int run = 0; run < kRuns; ++run) {
    CoinRunSpec spec;
    spec.n = 60;
    spec.seed = 100 + run;
    CoinRunResult r = run_coin(spec, fx.factory(run));
    if (r.all_returned(std::vector<bool>(60, false))) ++returned;
  }
  EXPECT_GE(returned, kRuns * 9 / 10);
}

TEST(WhpCoin, AgreementRateBeatsAnalyticBound) {
  Fixture fx(60, 0.25, 0.02);
  int agree = 0, completed = 0;
  const int kRuns = 60;
  for (int run = 0; run < kRuns; ++run) {
    CoinRunSpec spec;
    spec.n = 60;
    spec.seed = 900 + run;
    CoinRunResult r = run_coin(spec, fx.factory(run));
    std::vector<bool> corrupted(60, false);
    if (!r.all_returned(corrupted)) continue;
    ++completed;
    if (r.unanimous(corrupted)) ++agree;
  }
  ASSERT_GT(completed, 0);
  double rate = static_cast<double>(agree) / completed;
  // Lemma B.7 at d=0.02 is weak (can be negative); random asynchrony
  // should still agree most of the time.
  EXPECT_GE(rate, 0.5);
}

TEST(WhpCoin, SurvivesByzantineCommitteeMembers) {
  Fixture fx(60, 0.25, 0.02);
  CoinRunSpec spec;
  spec.n = 60;
  spec.seed = 31;
  spec.f_budget = 5;
  spec.corruptions = {{3, sim::FaultPlan::silent()},
                      {17, sim::FaultPlan::junk()},
                      {29, sim::FaultPlan::crash()},
                      {44, sim::FaultPlan::junk()},
                      {55, sim::FaultPlan::silent()}};
  CoinRunResult r = run_coin(spec, fx.factory(5));
  std::vector<bool> corrupted(60, false);
  for (auto i : {3, 17, 29, 44, 55}) corrupted[i] = true;
  EXPECT_TRUE(r.all_returned(corrupted));
}

TEST(WhpCoin, OnlyCommitteeMembersSend) {
  Fixture fx(60, 0.25, 0.02);
  sim::SimConfig cfg;
  cfg.n = 60;
  cfg.seed = 7;
  sim::Simulation sim(cfg);
  auto factory = fx.factory(9);
  for (crypto::ProcessId i = 0; i < 60; ++i)
    sim.add_process(std::make_unique<CoinHost>(factory(i)));
  sim.start();
  sim.run();

  std::size_t in_first = 0, in_second = 0;
  for (crypto::ProcessId i = 0; i < 60; ++i) {
    const auto& coin = dynamic_cast<const WhpCoin&>(
        dynamic_cast<CoinHost&>(sim.process(i)).coin());
    in_first += coin.in_first_committee();
    in_second += coin.in_second_committee();
  }
  // λ = 8 ln 60 ≈ 32.8, sample prob ≈ 0.55: committees well below n but
  // non-empty.
  EXPECT_GT(in_first, 10u);
  EXPECT_LT(in_first, 55u);
  EXPECT_GT(in_second, 10u);
  EXPECT_LT(in_second, 55u);

  // Word complexity O(n * committee): strictly below the all-to-all
  // 2 * n^2 * 2 words the full coin would pay even with the extra
  // election-proof word per message.
  EXPECT_LT(sim.metrics().correct_words(), 2u * 60u * 60u * 2u);
}

TEST(WhpCoin, WordComplexityBeatsSharedCoinAtScale) {
  // The asymptotic O(n log n) vs O(n²) gap visible at n = 150.
  Fixture fx(150, 0.25, 0.02);
  CoinRunSpec spec;
  spec.n = 150;
  spec.seed = 3;
  CoinRunResult r = run_coin(spec, fx.factory(0));
  std::uint64_t shared_words = 2ull * 150 * 150 * 2;  // Algorithm 1 cost
  EXPECT_LT(r.correct_words, shared_words / 2);
}

TEST(WhpCoin, DurationStaysConstantDepth) {
  Fixture fx(60, 0.25, 0.02);
  CoinRunSpec spec;
  spec.n = 60;
  spec.seed = 13;
  CoinRunResult r = run_coin(spec, fx.factory(2));
  EXPECT_LE(r.duration, 2u);
}

TEST(WhpCoin, NonMembersClaimingMembershipAreRejected) {
  Fixture fx(40, 0.25, 0.02);
  sim::SimConfig cfg;
  cfg.n = 40;
  cfg.f = 1;
  cfg.seed = 19;
  sim::Simulation sim(cfg);
  auto factory = fx.factory(4);
  for (crypto::ProcessId i = 0; i < 40; ++i)
    sim.add_process(std::make_unique<CoinHost>(factory(i)));

  // Find a process NOT in the first committee; it will forge a first.
  crypto::ProcessId outsider = 0;
  bool found = false;
  for (crypto::ProcessId i = 0; i < 40 && !found; ++i) {
    if (!fx.sampler->sample(i, "whp/4/first").sampled) {
      outsider = i;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  sim.corrupt(outsider, sim::FaultPlan::silent());
  sim.start();

  // Forge: valid VRF value but the (non-member) election proof.
  Writer inp;
  inp.str("whp-coin").u64(4);
  auto out = fx.vrf->eval(fx.registry->sk_of(outsider), inp.bytes());
  auto election = fx.sampler->sample(outsider, "whp/4/first");
  Writer w;
  w.blob(out.value).u32(outsider).blob(out.proof).blob(election.proof);
  for (crypto::ProcessId to = 0; to < 40; ++to)
    if (to != outsider) sim.inject(outsider, to, "whp/4/first", w.bytes(), 3);
  sim.run();

  // No correct process may have folded the outsider's value: a forged
  // membership claim that slipped through would corrupt the coin whenever
  // the outsider held the minimum, so it must never appear as anyone's
  // minimum origin.
  for (crypto::ProcessId i = 0; i < 40; ++i) {
    if (i == outsider) continue;
    const auto& coin = dynamic_cast<const WhpCoin&>(
        dynamic_cast<CoinHost&>(sim.process(i)).coin());
    if (!coin.current_min_value().empty())
      EXPECT_NE(coin.current_min_origin(), outsider) << "process " << i;
  }
}

/// Hands every delivered message to the wrapped process twice — the
/// harshest duplicate pattern a lossy link can produce. Idempotent
/// handlers send nothing extra, so the trace and word count match the
/// single-delivery run exactly.
class DeliverTwice final : public sim::Process {
 public:
  explicit DeliverTwice(std::unique_ptr<sim::Process> inner)
      : inner_(std::move(inner)) {}
  void on_start(sim::Context& ctx) override { inner_->on_start(ctx); }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    inner_->on_message(ctx, msg);
    inner_->on_message(ctx, msg);
  }
  sim::Process& inner() { return *inner_; }

 private:
  std::unique_ptr<sim::Process> inner_;
};

TEST(WhpCoin, DuplicateDeliveryIsIdempotent) {
  Fixture fx(60, 0.25, 0.02);
  auto run = [&](bool doubled) {
    sim::SimConfig cfg;
    cfg.n = 60;
    cfg.seed = 53;
    auto sim = std::make_unique<sim::Simulation>(cfg);
    auto factory = fx.factory(3);
    for (crypto::ProcessId i = 0; i < 60; ++i) {
      auto host = std::make_unique<CoinHost>(factory(i));
      if (doubled)
        sim->add_process(std::make_unique<DeliverTwice>(std::move(host)));
      else
        sim->add_process(std::move(host));
    }
    sim->start();
    sim->run();
    return sim;
  };
  auto once = run(false);
  auto twice = run(true);

  for (crypto::ProcessId i = 0; i < 60; ++i) {
    const auto& a = dynamic_cast<CoinHost&>(once->process(i)).coin();
    const auto& b =
        dynamic_cast<CoinHost&>(
            dynamic_cast<DeliverTwice&>(twice->process(i)).inner())
            .coin();
    ASSERT_EQ(a.done(), b.done()) << i;
    if (a.done()) EXPECT_EQ(a.output(), b.output()) << i;
  }
  EXPECT_EQ(once->metrics().correct_words(), twice->metrics().correct_words());
  EXPECT_EQ(once->metrics().messages_sent(), twice->metrics().messages_sent());
  EXPECT_EQ(once->metrics().words_by_tag(), twice->metrics().words_by_tag());
}

TEST(WhpCoin, OutputBeforeDoneThrows) {
  Fixture fx(40, 0.25, 0.02);
  auto coin = fx.factory(0)(0);
  EXPECT_THROW(coin->output(), PreconditionError);
}

TEST(WhpCoin, RejectsMissingEnvironment) {
  Fixture fx(40, 0.25, 0.02);
  WhpCoin::Config cfg;
  cfg.tag = "x";
  cfg.round = 0;
  cfg.params = fx.params;
  cfg.vrf = fx.vrf;
  cfg.registry = fx.registry;
  cfg.sampler = nullptr;
  EXPECT_THROW(WhpCoin{cfg}, PreconditionError);
}

}  // namespace
}  // namespace coincidence::coin
