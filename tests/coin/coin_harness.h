// Shared harness for coin protocol tests: builds a Simulation of n
// CoinHost processes around a per-test coin factory, runs it, and
// collects the outputs of correct processes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "coin/coin_protocol.h"
#include "crypto/fast_vrf.h"
#include "sim/simulation.h"

namespace coincidence::coin::testing {

struct CoinRunResult {
  /// Output per process; nullopt = did not return (or was corrupted).
  std::vector<std::optional<int>> outputs;
  std::uint64_t correct_words = 0;
  std::uint64_t duration = 0;

  /// All correct processes returned.
  bool all_returned(const std::vector<bool>& corrupted) const {
    for (std::size_t i = 0; i < outputs.size(); ++i)
      if (!corrupted[i] && !outputs[i].has_value()) return false;
    return true;
  }

  /// All correct processes returned the same bit; nullopt if not.
  std::optional<int> unanimous(const std::vector<bool>& corrupted) const {
    std::optional<int> bit;
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      if (corrupted[i]) continue;
      if (!outputs[i].has_value()) return std::nullopt;
      if (!bit) bit = outputs[i];
      if (*bit != *outputs[i]) return std::nullopt;
    }
    return bit;
  }
};

using CoinFactory =
    std::function<std::unique_ptr<CoinProtocol>(crypto::ProcessId)>;

struct CoinRunSpec {
  std::size_t n = 0;
  std::size_t f_budget = 0;
  std::uint64_t seed = 1;
  std::function<std::unique_ptr<sim::Adversary>()> adversary;  // optional
  /// Processes corrupted before start, with their fault plans.
  std::vector<std::pair<sim::ProcessId, sim::FaultPlan>> corruptions;
};

inline CoinRunResult run_coin(const CoinRunSpec& spec,
                              const CoinFactory& factory) {
  sim::SimConfig cfg;
  cfg.n = spec.n;
  cfg.f = spec.f_budget;
  cfg.seed = spec.seed;
  sim::Simulation sim(cfg);
  for (crypto::ProcessId i = 0; i < spec.n; ++i)
    sim.add_process(std::make_unique<CoinHost>(factory(i)));
  if (spec.adversary) sim.set_adversary(spec.adversary());
  for (const auto& [id, plan] : spec.corruptions) sim.corrupt(id, plan);
  sim.start();
  sim.run();

  CoinRunResult result;
  result.outputs.resize(spec.n);
  for (crypto::ProcessId i = 0; i < spec.n; ++i) {
    const auto& coin = dynamic_cast<CoinHost&>(sim.process(i)).coin();
    if (coin.done()) result.outputs[i] = coin.output();
  }
  result.correct_words = sim.metrics().correct_words();
  for (crypto::ProcessId i = 0; i < spec.n; ++i)
    result.duration = std::max(result.duration, sim.depth_of(i));
  return result;
}

}  // namespace coincidence::coin::testing
