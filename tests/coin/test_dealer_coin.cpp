#include "coin/dealer_coin.h"

#include <gtest/gtest.h>

#include "coin_harness.h"
#include "common/errors.h"
#include "common/ser.h"

namespace coincidence::coin {
namespace {

using testing::CoinRunResult;
using testing::CoinRunSpec;
using testing::run_coin;

struct Fixture {
  Fixture(std::size_t n, std::size_t f, std::size_t rounds = 16,
          std::uint64_t seed = 5)
      : setup(std::make_shared<DealerCoinSetup>(n, f, rounds, seed)) {}

  testing::CoinFactory factory(std::uint64_t round) const {
    return [this, round](crypto::ProcessId) {
      DealerCoin::Config cfg;
      cfg.tag = "dealer/" + std::to_string(round);
      cfg.round = round;
      cfg.setup = setup;
      return std::make_unique<DealerCoin>(cfg);
    };
  }

  std::shared_ptr<DealerCoinSetup> setup;
};

TEST(DealerCoin, ReconstructsTheDealtBit) {
  Fixture fx(7, 2);
  for (std::uint64_t round = 0; round < 8; ++round) {
    CoinRunSpec spec;
    spec.n = 7;
    spec.seed = round + 1;
    CoinRunResult r = run_coin(spec, fx.factory(round));
    std::vector<bool> corrupted(7, false);
    auto bit = r.unanimous(corrupted);
    ASSERT_TRUE(bit.has_value()) << round;
    EXPECT_EQ(*bit, fx.setup->bit_of(round)) << round;
  }
}

TEST(DealerCoin, PerfectSuccessRateBothBitsAppear) {
  Fixture fx(7, 2, /*rounds=*/40);
  int ones = 0;
  for (std::uint64_t round = 0; round < 40; ++round) {
    CoinRunSpec spec;
    spec.n = 7;
    spec.seed = round;
    CoinRunResult r = run_coin(spec, fx.factory(round));
    auto bit = r.unanimous(std::vector<bool>(7, false));
    ASSERT_TRUE(bit.has_value());
    ones += *bit;
  }
  EXPECT_GT(ones, 10);
  EXPECT_LT(ones, 30);
}

TEST(DealerCoin, TerminatesWithFSilentProcesses) {
  Fixture fx(7, 2);
  CoinRunSpec spec;
  spec.n = 7;
  spec.f_budget = 2;
  spec.corruptions = {{0, sim::FaultPlan::silent()},
                      {1, sim::FaultPlan::crash()}};
  CoinRunResult r = run_coin(spec, fx.factory(0));
  std::vector<bool> corrupted(7, false);
  corrupted[0] = corrupted[1] = true;
  EXPECT_TRUE(r.all_returned(corrupted));
  auto bit = r.unanimous(corrupted);
  ASSERT_TRUE(bit.has_value());
  EXPECT_EQ(*bit, fx.setup->bit_of(0));
}

TEST(DealerCoin, PoisonedShareIsRejected) {
  // Byzantine process sends an altered share: the dealer MAC catches it,
  // so reconstruction still yields the dealt bit.
  Fixture fx(5, 1);
  sim::SimConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  cfg.seed = 2;
  sim::Simulation sim(cfg);
  auto factory = fx.factory(1);
  for (crypto::ProcessId i = 0; i < 5; ++i)
    sim.add_process(std::make_unique<CoinHost>(factory(i)));
  sim.corrupt(4, sim::FaultPlan::silent());
  sim.start();

  auto dealt = fx.setup->share_for(1, 4);
  Writer w;
  w.u64(dealt.share.x).u64(dealt.share.y + 1).blob(dealt.mac);  // poisoned y
  for (crypto::ProcessId to = 0; to < 4; ++to)
    sim.inject(4, to, "dealer/1/share", w.bytes(), 2);
  sim.run();

  for (crypto::ProcessId i = 0; i < 4; ++i) {
    const auto& coin = dynamic_cast<CoinHost&>(sim.process(i)).coin();
    ASSERT_TRUE(coin.done());
    EXPECT_EQ(coin.output(), fx.setup->bit_of(1));
  }
}

TEST(DealerCoin, StolenShareCannotBeReplayedAsOwn) {
  // Byzantine 4 replays process 0's share under its own sender id: the
  // x == from + 1 binding rejects it.
  Fixture fx(5, 1);
  sim::SimConfig cfg;
  cfg.n = 5;
  cfg.f = 1;
  cfg.seed = 3;
  sim::Simulation sim(cfg);
  auto factory = fx.factory(2);
  for (crypto::ProcessId i = 0; i < 5; ++i)
    sim.add_process(std::make_unique<CoinHost>(factory(i)));
  sim.corrupt(4, sim::FaultPlan::silent());
  sim.start();

  auto stolen = fx.setup->share_for(2, 0);
  Writer w;
  w.u64(stolen.share.x).u64(stolen.share.y).blob(stolen.mac);
  for (crypto::ProcessId to = 0; to < 4; ++to)
    sim.inject(4, to, "dealer/2/share", w.bytes(), 2);
  sim.run();

  for (crypto::ProcessId i = 0; i < 4; ++i) {
    const auto& coin = dynamic_cast<CoinHost&>(sim.process(i)).coin();
    ASSERT_TRUE(coin.done());
    EXPECT_EQ(coin.output(), fx.setup->bit_of(2));
  }
}

TEST(DealerCoinSetup, DeterministicForSeed) {
  DealerCoinSetup a(5, 1, 4, 9);
  DealerCoinSetup b(5, 1, 4, 9);
  for (std::uint64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.bit_of(r), b.bit_of(r));
    EXPECT_EQ(a.share_for(r, 2).share.y, b.share_for(r, 2).share.y);
  }
}

TEST(DealerCoinSetup, VerifyShareRejectsWrongRound) {
  DealerCoinSetup setup(5, 1, 4, 9);
  auto dealt = setup.share_for(0, 1);
  EXPECT_TRUE(setup.verify_share(0, dealt.share, dealt.mac));
  EXPECT_FALSE(setup.verify_share(1, dealt.share, dealt.mac));
  EXPECT_FALSE(setup.verify_share(99, dealt.share, dealt.mac));
}

TEST(DealerCoinSetup, BoundsChecked) {
  DealerCoinSetup setup(5, 1, 2, 9);
  EXPECT_THROW(setup.share_for(2, 0), PreconditionError);   // round not dealt
  EXPECT_THROW(setup.share_for(0, 5), PreconditionError);   // bad process
  EXPECT_THROW(setup.bit_of(2), PreconditionError);
  EXPECT_THROW(DealerCoinSetup(3, 3, 1, 1), PreconditionError);  // n <= f
}

TEST(DealerCoin, RoundBeyondSupplyThrows) {
  Fixture fx(5, 1, /*rounds=*/2);
  DealerCoin::Config cfg;
  cfg.tag = "d";
  cfg.round = 2;
  cfg.setup = fx.setup;
  EXPECT_THROW(DealerCoin{cfg}, PreconditionError);
}

}  // namespace
}  // namespace coincidence::coin
