// Adversarial-input suite for the approver: every way a Byzantine
// process can try to cheat the three-phase structure, and why each fails.
#include <gtest/gtest.h>

#include "ba/approver.h"
#include "common/errors.h"
#include "common/ser.h"
#include "crypto/fast_vrf.h"
#include "sim/simulation.h"

namespace coincidence::ba {
namespace {

struct AttackFixture {
  explicit AttackFixture(std::size_t n, std::uint64_t key_seed = 21)
      : n(n),
        params(committee::Params::derive(n, 0.25, 0.02, /*strict=*/false)),
        registry(crypto::KeyRegistry::create_for(n, key_seed)),
        vrf(std::make_shared<crypto::FastVrf>(registry)),
        sampler(std::make_shared<committee::Sampler>(vrf, registry,
                                                     params.sample_prob())),
        signer(std::make_shared<crypto::Signer>(registry)) {}

  Approver::Config config() const {
    Approver::Config cfg;
    cfg.tag = "apv";
    cfg.params = params;
    cfg.registry = registry;
    cfg.sampler = sampler;
    cfg.signer = signer;
    return cfg;
  }

  /// Builds a sim where everyone approves `input`; the last process is
  /// corrupted silent (the attacker's identity for injections).
  std::unique_ptr<sim::Simulation> make_sim(Value input,
                                            std::uint64_t seed) const {
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.f = 1;
    cfg.seed = seed;
    auto sim = std::make_unique<sim::Simulation>(cfg);
    for (std::size_t i = 0; i < n; ++i)
      sim->add_process(std::make_unique<ApproverHost>(config(), input));
    sim->corrupt(static_cast<sim::ProcessId>(n - 1),
                 sim::FaultPlan::silent());
    return sim;
  }

  void expect_all_output(sim::Simulation& sim, Value v) const {
    for (sim::ProcessId i = 0; i + 1 < n; ++i) {
      auto& host = dynamic_cast<ApproverHost&>(sim.process(i));
      ASSERT_TRUE(host.approver().done()) << i;
      EXPECT_EQ(host.approver().output(), std::set<Value>{v}) << i;
    }
  }

  std::size_t n;
  committee::Params params;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::FastVrf> vrf;
  std::shared_ptr<committee::Sampler> sampler;
  std::shared_ptr<crypto::Signer> signer;
};

TEST(ApproverAttacks, InitWithForgedElectionProofIgnored) {
  AttackFixture fx(40);
  auto sim = fx.make_sim(kZero, 1);
  sim->start();
  sim::ProcessId attacker = 39;
  Writer w;
  w.u8(kOne).blob(bytes_of("fake-election"));
  for (sim::ProcessId to = 0; to < 39; ++to)
    sim->inject(attacker, to, "apv/init", w.bytes(), 2);
  sim->run();
  fx.expect_all_output(*sim, kZero);
}

TEST(ApproverAttacks, EchoWithoutMembershipIgnored) {
  AttackFixture fx(40);
  auto sim = fx.make_sim(kZero, 2);
  sim->start();
  sim::ProcessId attacker = 39;
  // Valid signature over <echo,1> but an election proof for the WRONG
  // committee seed (init instead of echo/1).
  auto wrong_committee = fx.sampler->sample(attacker, "apv/init");
  Writer sig_msg;
  sig_msg.str("apv").str("echo").u8(kOne);
  Bytes sig = fx.signer->sign(attacker, sig_msg.bytes());
  Writer w;
  w.u8(kOne).blob(wrong_committee.proof).blob(sig);
  for (sim::ProcessId to = 0; to < 39; ++to)
    sim->inject(attacker, to, "apv/echo", w.bytes(), 3);
  sim->run();
  fx.expect_all_output(*sim, kZero);
}

TEST(ApproverAttacks, OkWithDuplicatedEchoEntriesRejected) {
  // W copies of ONE valid signed echo do not make a quorum: receivers
  // must require W *distinct* echo senders.
  AttackFixture fx(40);
  auto sim = fx.make_sim(kZero, 3);
  sim->start();
  sim::ProcessId attacker = 39;

  // Manufacture one genuinely valid signed echo for value 0 from some
  // echo(0)-committee member (the attacker can read the wire, so this is
  // realistic), then duplicate it W times in a forged ok.
  crypto::ProcessId echoer = 0;
  bool found = false;
  for (crypto::ProcessId i = 0; i < 39 && !found; ++i) {
    if (fx.sampler->sample(i, "apv/echo/0").sampled) {
      echoer = i;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  auto echo_election = fx.sampler->sample(echoer, "apv/echo/0");
  Writer sig_msg;
  sig_msg.str("apv").str("echo").u8(kZero);
  Bytes sig = fx.signer->sign(echoer, sig_msg.bytes());

  auto ok_election = fx.sampler->sample(attacker, "apv/ok");
  Writer w;
  w.u8(kZero).blob(ok_election.proof);
  w.u32(static_cast<std::uint32_t>(fx.params.W));
  for (std::size_t i = 0; i < fx.params.W; ++i)
    w.u32(echoer).blob(sig).blob(echo_election.proof);
  for (sim::ProcessId to = 0; to < 39; ++to)
    sim->inject(attacker, to, "apv/ok", w.bytes(), 2 + 2 * fx.params.W);
  sim->run();

  // The forged oks count at most once per *sender* anyway, but the value
  // is the honest one; the sharper check: receivers who complete must
  // have needed W distinct ok senders, so the run completes exactly as
  // the honest run does.
  fx.expect_all_output(*sim, kZero);
}

TEST(ApproverAttacks, OkForValueNobodyInitializedCannotForge) {
  // Even an ok-committee member cannot produce a valid ok for value 1
  // when all correct inits were 0: it would need W signed echoes for 1,
  // and no correct echo(1) member ever signs one.
  AttackFixture fx(40);
  auto sim = fx.make_sim(kZero, 4);
  sim->start();
  sim::ProcessId attacker = 39;
  auto ok_election = fx.sampler->sample(attacker, "apv/ok");
  // Self-signed junk "echoes" from ids 0..W-1.
  Writer w;
  w.u8(kOne).blob(ok_election.proof);
  w.u32(static_cast<std::uint32_t>(fx.params.W));
  Writer sig_msg;
  sig_msg.str("apv").str("echo").u8(kOne);
  Bytes attacker_sig = fx.signer->sign(attacker, sig_msg.bytes());
  for (std::uint32_t i = 0; i < fx.params.W; ++i)
    w.u32(i).blob(attacker_sig).blob(fx.sampler->sample(i, "apv/echo/1").proof);
  for (sim::ProcessId to = 0; to < 39; ++to)
    sim->inject(attacker, to, "apv/ok", w.bytes(), 2 + 2 * fx.params.W);
  sim->run();
  fx.expect_all_output(*sim, kZero);
}

TEST(ApproverAttacks, TruncatedAndOversizedPayloadsIgnored) {
  AttackFixture fx(40);
  auto sim = fx.make_sim(kOne, 5);
  sim->start();
  sim::ProcessId attacker = 39;
  for (sim::ProcessId to : {0u, 1u, 2u}) {
    sim->inject(attacker, to, "apv/init", Bytes{}, 1);          // empty
    sim->inject(attacker, to, "apv/echo", bytes_of("x"), 1);    // truncated
    Writer w;
    w.u8(kOne).blob(Bytes(4096, 0xcc)).blob(Bytes(4096, 0xdd));
    w.u8(99);  // trailing garbage
    sim->inject(attacker, to, "apv/echo", w.bytes(), 1);
    sim->inject(attacker, to, "apv/ok", bytes_of("?"), 1);
  }
  sim->run();
  fx.expect_all_output(*sim, kOne);
}

TEST(ApproverAttacks, CrossInstanceReplayIgnored) {
  // Proofs and signatures from instance "apv" must not validate in
  // instance "apv2" (the tag is part of every seed and signed message).
  AttackFixture fx(40);
  sim::SimConfig cfg;
  cfg.n = 40;
  cfg.f = 1;
  cfg.seed = 6;
  sim::Simulation sim(cfg);
  Approver::Config acfg = fx.config();
  acfg.tag = "apv2";
  for (std::size_t i = 0; i < 40; ++i)
    sim.add_process(std::make_unique<ApproverHost>(acfg, kZero));
  sim.corrupt(39, sim::FaultPlan::silent());
  sim.start();

  // Replay an "apv"-instance init election proof into "apv2".
  auto foreign = fx.sampler->sample(39, "apv/init");
  Writer w;
  w.u8(kOne).blob(foreign.proof);
  for (sim::ProcessId to = 0; to < 39; ++to)
    sim.inject(39, to, "apv2/init", w.bytes(), 2);
  sim.run();
  for (sim::ProcessId i = 0; i < 39; ++i) {
    auto& host = dynamic_cast<ApproverHost&>(sim.process(i));
    ASSERT_TRUE(host.approver().done()) << i;
    EXPECT_EQ(host.approver().output(), std::set<Value>{kZero}) << i;
  }
}

}  // namespace
}  // namespace coincidence::ba
