// MultiValuedBa: the leaderless reduction of arbitrary-value agreement
// to binary BA WHP (mv_ba.h). These tests check the multivalued
// properties the binary harness cannot express: agreement on a *payload*
// (not a bit), validity (the decided payload is some correct process's
// actual proposal), the no-op close-out when the candidate pool runs
// dry, and determinism of the candidate examination order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ba/mv_ba.h"
#include "common/errors.h"
#include "core/env.h"
#include "sim/simulation.h"

namespace coincidence::ba {
namespace {

Bytes proposal_of(sim::ProcessId p) {
  return bytes_of("req-from-" + std::to_string(p));
}

MultiValuedBa::Config base_config(const core::Env& env,
                                  const std::string& tag = "mvba") {
  MultiValuedBa::Config cfg;
  cfg.tag = tag;
  cfg.params = env.params;
  cfg.vrf = env.vrf;
  cfg.registry = env.registry;
  cfg.sampler = env.sampler;
  cfg.signer = env.signer;
  cfg.batcher = env.batcher;
  return cfg;
}

struct MvRun {
  std::size_t n;
  sim::Simulation sim;
  explicit MvRun(sim::SimConfig cfg) : n(cfg.n), sim(cfg) {}

  MultiValuedBa& at(sim::ProcessId i) {
    return dynamic_cast<MultiValuedBa&>(sim.process(i));
  }
  bool all_correct_decided() {
    for (sim::ProcessId i = 0; i < n; ++i) {
      if (sim.is_corrupted(i)) continue;
      if (!at(i).decided()) return false;
    }
    return true;
  }
};

std::unique_ptr<MvRun> run_mv(const core::Env& env, std::uint64_t seed,
                              std::size_t silent,
                              const MultiValuedBa::Config& cfg) {
  sim::SimConfig scfg;
  scfg.n = env.n();
  scfg.f = silent;
  scfg.seed = seed;
  auto run = std::make_unique<MvRun>(scfg);
  for (sim::ProcessId i = 0; i < env.n(); ++i)
    run->sim.add_process(
        std::make_unique<MultiValuedBa>(cfg, proposal_of(i)));
  for (std::size_t i = 0; i < silent; ++i)
    run->sim.corrupt(static_cast<sim::ProcessId>(env.n() - 1 - i),
                     sim::FaultPlan::silent());
  run->sim.start();
  run->sim.run_until([&] { return run->all_correct_decided(); });
  return run;
}

TEST(MultiValuedBaTest, DistinctProposalsAgreeOnOneValidValue) {
  core::Env env = core::Env::make_relaxed(48, 21);
  auto run = run_mv(env, /*seed=*/3, /*silent=*/0, base_config(env));
  ASSERT_TRUE(run->all_correct_decided());

  const MultiValuedBa& first = run->at(0);
  ASSERT_FALSE(first.decided_noop());
  const sim::ProcessId proposer = first.decided_proposer();
  for (sim::ProcessId i = 0; i < env.n(); ++i) {
    const MultiValuedBa& p = run->at(i);
    EXPECT_EQ(p.decision(), first.decision());
    EXPECT_EQ(p.decided_proposer(), proposer);
    // Agreement on the payload, and validity: the payload is exactly
    // what `proposer` fed into its RBC.
    EXPECT_EQ(p.decided_value(), proposal_of(proposer));
  }
}

TEST(MultiValuedBaTest, ToleratesSilentFaultsAndAdoptsCorrectProposer) {
  core::Env env = core::Env::make_relaxed(48, 22);
  MultiValuedBa::Config cfg = base_config(env);
  // Exercise the skip-fallback wakeup plumbing through the reduction —
  // healthy runs must decide with or without it armed.
  cfg.skip_timeout = 30000;
  auto run = run_mv(env, /*seed=*/7, /*silent=*/env.f(), cfg);
  ASSERT_TRUE(run->all_correct_decided());

  const MultiValuedBa& first = run->at(0);
  ASSERT_FALSE(first.decided_noop());
  const sim::ProcessId proposer = first.decided_proposer();
  // A silent-from-birth proposer never broadcasts, so its candidate can
  // only lose its BA: the adopted proposer must be a correct process.
  EXPECT_FALSE(run->sim.is_corrupted(proposer));
  for (sim::ProcessId i = 0; i < env.n(); ++i) {
    if (run->sim.is_corrupted(i)) continue;
    EXPECT_EQ(run->at(i).decided_value(), proposal_of(proposer));
  }
}

TEST(MultiValuedBaTest, NoopDecisionWhenCandidatePoolExhausted) {
  core::Env env = core::Env::make_relaxed(48, 23);
  MultiValuedBa::Config cfg = base_config(env);
  cfg.max_candidates = 1;
  // Silence the single eligible candidate: its RBC never starts, every
  // correct process inputs 0, the lone BA decides 0, and the instance
  // must close with the no-op decision instead of hanging.
  const sim::ProcessId head =
      MultiValuedBa(cfg, Bytes{}).rank_order().front();

  sim::SimConfig scfg;
  scfg.n = env.n();
  scfg.f = 1;
  scfg.seed = 9;
  MvRun run(scfg);
  for (sim::ProcessId i = 0; i < env.n(); ++i)
    run.sim.add_process(std::make_unique<MultiValuedBa>(cfg, proposal_of(i)));
  run.sim.corrupt(head, sim::FaultPlan::silent());
  run.sim.start();
  run.sim.run_until([&] { return run.all_correct_decided(); });
  ASSERT_TRUE(run.all_correct_decided());
  for (sim::ProcessId i = 0; i < env.n(); ++i) {
    if (run.sim.is_corrupted(i)) continue;
    EXPECT_TRUE(run.at(i).decided_noop());
    EXPECT_EQ(run.at(i).decision(), -1);
    EXPECT_TRUE(run.at(i).decided_value().empty());
  }
}

TEST(MultiValuedBaTest, RankOrderIsADeterministicTagKeyedPermutation) {
  core::Env env = core::Env::make_relaxed(48, 24);
  MultiValuedBa a(base_config(env, "slot0"), Bytes{});
  MultiValuedBa b(base_config(env, "slot0"), Bytes{});
  MultiValuedBa c(base_config(env, "slot1"), Bytes{});

  EXPECT_EQ(a.rank_order(), b.rank_order());  // same tag, same order
  EXPECT_NE(a.rank_order(), c.rank_order());  // fresh order per slot tag

  // Each order is a permutation of all n proposers.
  std::vector<bool> seen(env.n(), false);
  for (sim::ProcessId p : a.rank_order()) {
    ASSERT_LT(p, env.n());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
  EXPECT_EQ(a.rank_order().size(), env.n());
}

TEST(MultiValuedBaTest, AccessorsRequireADecision) {
  core::Env env = core::Env::make_relaxed(48, 25);
  MultiValuedBa undecided(base_config(env), bytes_of("x"));
  EXPECT_FALSE(undecided.decided());
  EXPECT_THROW(undecided.decided_value(), PreconditionError);
  EXPECT_THROW(undecided.decided_proposer(), PreconditionError);
}

}  // namespace
}  // namespace coincidence::ba
