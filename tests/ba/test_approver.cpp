#include "ba/approver.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/ser.h"
#include "crypto/fast_vrf.h"
#include "sim/simulation.h"

namespace coincidence::ba {
namespace {

struct Fixture {
  explicit Fixture(std::size_t n, double eps = 0.25, double d = 0.02,
                   std::uint64_t key_seed = 7)
      : params(committee::Params::derive(n, eps, d, /*strict=*/false)),
        registry(crypto::KeyRegistry::create_for(n, key_seed)),
        vrf(std::make_shared<crypto::FastVrf>(registry)),
        sampler(std::make_shared<committee::Sampler>(vrf, registry,
                                                     params.sample_prob())),
        signer(std::make_shared<crypto::Signer>(registry)) {}

  Approver::Config config(const std::string& tag) const {
    Approver::Config cfg;
    cfg.tag = tag;
    cfg.params = params;
    cfg.registry = registry;
    cfg.sampler = sampler;
    cfg.signer = signer;
    return cfg;
  }

  committee::Params params;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::FastVrf> vrf;
  std::shared_ptr<committee::Sampler> sampler;
  std::shared_ptr<crypto::Signer> signer;
};

struct ApproverRun {
  std::vector<std::optional<std::set<Value>>> outputs;
  bool all_done(const std::vector<bool>& corrupted) const {
    for (std::size_t i = 0; i < outputs.size(); ++i)
      if (!corrupted[i] && !outputs[i]) return false;
    return true;
  }
};

ApproverRun run_approver(const Fixture& fx, const std::vector<Value>& inputs,
                         std::uint64_t seed,
                         std::vector<std::pair<sim::ProcessId, sim::FaultPlan>>
                             corruptions = {},
                         std::size_t f_budget = 0) {
  sim::SimConfig cfg;
  cfg.n = inputs.size();
  cfg.f = f_budget;
  cfg.seed = seed;
  sim::Simulation sim(cfg);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    sim.add_process(
        std::make_unique<ApproverHost>(fx.config("apv"), inputs[i]));
  for (auto& [id, plan] : corruptions) sim.corrupt(id, plan);
  sim.start();
  sim.run();

  ApproverRun out;
  out.outputs.resize(inputs.size());
  for (sim::ProcessId i = 0; i < inputs.size(); ++i) {
    auto& host = dynamic_cast<ApproverHost&>(sim.process(i));
    if (host.approver().done()) out.outputs[i] = host.approver().output();
  }
  return out;
}

TEST(Approver, ValidityUnanimousInput) {
  // Lemma 6.2: all invoke approve(v) => only possible return is {v}.
  Fixture fx(60);
  for (Value v : {kZero, kOne, kBot}) {
    ApproverRun r = run_approver(fx, std::vector<Value>(60, v), 17 + v);
    std::vector<bool> corrupted(60, false);
    ASSERT_TRUE(r.all_done(corrupted)) << value_name(v);
    for (const auto& out : r.outputs) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, std::set<Value>{v}) << value_name(v);
    }
  }
}

TEST(Approver, GradedAgreementNoConflictingSingletons) {
  // Lemma 6.3 across mixed-input runs: if any process returns {v} and
  // another {w} as singletons, v == w.
  Fixture fx(60);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    std::vector<Value> inputs(60, kZero);
    for (std::size_t i = 0; i < 30; ++i) inputs[i] = kOne;
    ApproverRun r = run_approver(fx, inputs, 100 + seed);
    std::optional<Value> singleton;
    for (const auto& out : r.outputs) {
      if (!out || out->size() != 1) continue;
      Value v = *out->begin();
      if (!singleton) singleton = v;
      EXPECT_EQ(*singleton, v) << "seed " << seed;
    }
  }
}

TEST(Approver, TerminationReturnsNonEmpty) {
  // Lemma 6.4: all invoke => everyone returns a non-empty set (whp).
  Fixture fx(60);
  int completed = 0;
  const int kRuns = 25;
  for (std::uint64_t seed = 0; seed < kRuns; ++seed) {
    std::vector<Value> inputs(60, seed % 2 ? kOne : kZero);
    for (std::size_t i = 0; i < 20; ++i) inputs[i] = kBot;
    ApproverRun r = run_approver(fx, inputs, 300 + seed);
    std::vector<bool> corrupted(60, false);
    if (!r.all_done(corrupted)) continue;
    ++completed;
    for (const auto& out : r.outputs) EXPECT_FALSE(out->empty());
  }
  EXPECT_GE(completed, kRuns * 8 / 10);  // whp at this (relaxed) n
}

TEST(Approver, MixedInputsReturnSubsetOfInputs) {
  Fixture fx(60);
  std::vector<Value> inputs(60, kZero);
  for (std::size_t i = 0; i < 30; ++i) inputs[i] = kBot;
  ApproverRun r = run_approver(fx, inputs, 55);
  for (const auto& out : r.outputs) {
    if (!out) continue;
    for (Value v : *out) EXPECT_TRUE(v == kZero || v == kBot);
  }
}

TEST(Approver, ToleratesSilentCommitteeMembers) {
  Fixture fx(60);
  std::vector<std::pair<sim::ProcessId, sim::FaultPlan>> corruptions;
  for (sim::ProcessId i = 0; i < 4; ++i)
    corruptions.push_back({i, sim::FaultPlan::silent()});
  ApproverRun r = run_approver(fx, std::vector<Value>(60, kOne), 77,
                               corruptions, /*f_budget=*/4);
  std::vector<bool> corrupted(60, false);
  for (int i = 0; i < 4; ++i) corrupted[i] = true;
  EXPECT_TRUE(r.all_done(corrupted));
  for (std::size_t i = 4; i < 60; ++i)
    EXPECT_EQ(*r.outputs[i], std::set<Value>{kOne});
}

TEST(Approver, ToleratesJunkSenders) {
  Fixture fx(60);
  ApproverRun r = run_approver(fx, std::vector<Value>(60, kZero), 78,
                               {{10, sim::FaultPlan::junk()},
                                {20, sim::FaultPlan::junk()}},
                               /*f_budget=*/2);
  std::vector<bool> corrupted(60, false);
  corrupted[10] = corrupted[20] = true;
  EXPECT_TRUE(r.all_done(corrupted));
  for (std::size_t i = 0; i < 60; ++i) {
    if (corrupted[i] || !r.outputs[i]) continue;
    EXPECT_EQ(*r.outputs[i], std::set<Value>{kZero});
  }
}

TEST(Approver, ForgedOkWithoutValidProofIsIgnored) {
  Fixture fx(40);
  sim::SimConfig cfg;
  cfg.n = 40;
  cfg.f = 1;
  cfg.seed = 5;
  sim::Simulation sim(cfg);
  for (std::size_t i = 0; i < 40; ++i)
    sim.add_process(
        std::make_unique<ApproverHost>(fx.config("apv"), kZero));
  sim.corrupt(39, sim::FaultPlan::silent());
  sim.start();

  // Craft an ok for value 1 (which nobody initialized) with W bogus
  // "signed echoes": must be rejected by every correct process.
  auto election = fx.sampler->sample(39, "apv/ok");
  Writer w;
  w.u8(kOne).blob(election.proof);
  w.u32(static_cast<std::uint32_t>(fx.params.W));
  for (std::uint32_t i = 0; i < fx.params.W; ++i)
    w.u32(i).blob(Bytes(32, 0xaa)).blob(bytes_of("bogus"));
  for (sim::ProcessId to = 0; to < 39; ++to)
    sim.inject(39, to, "apv/ok", w.bytes(), 2 + 2 * fx.params.W);
  sim.run();

  for (sim::ProcessId i = 0; i < 39; ++i) {
    auto& host = dynamic_cast<ApproverHost&>(sim.process(i));
    if (host.approver().done())
      EXPECT_EQ(host.approver().output(), std::set<Value>{kZero}) << i;
  }
}

TEST(Approver, OkCommitteeMembersSendAtMostOneOk) {
  // Process replaceability (§6.1): one broadcast per committee role.
  Fixture fx(60);
  sim::SimConfig cfg;
  cfg.n = 60;
  cfg.seed = 21;
  sim::Simulation sim(cfg);
  std::vector<Value> inputs(60, kZero);
  for (std::size_t i = 0; i < 30; ++i) inputs[i] = kOne;  // two live values
  for (std::size_t i = 0; i < 60; ++i)
    sim.add_process(
        std::make_unique<ApproverHost>(fx.config("apv"), inputs[i]));
  sim.start();
  sim.run();
  // sent_ok is a bool per process, so "at most one ok" holds by
  // construction; verify the committee actually had senders and that
  // non-members never sent.
  std::size_t senders = 0;
  for (sim::ProcessId i = 0; i < 60; ++i) {
    auto& a = dynamic_cast<ApproverHost&>(sim.process(i)).approver();
    if (a.sent_ok()) {
      ++senders;
      EXPECT_TRUE(a.in_ok_committee()) << i;
    }
  }
  EXPECT_GT(senders, 0u);
}

/// Hands every delivered message to the wrapped process twice, back to
/// back — the harshest duplicate-delivery pattern a lossy link can
/// produce. An idempotent protocol sends nothing extra, so the run's
/// trace (and therefore its word count) is unchanged.
class DeliverTwice final : public sim::Process {
 public:
  explicit DeliverTwice(std::unique_ptr<sim::Process> inner)
      : inner_(std::move(inner)) {}
  void on_start(sim::Context& ctx) override { inner_->on_start(ctx); }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    inner_->on_message(ctx, msg);
    inner_->on_message(ctx, msg);
  }
  sim::Process& inner() { return *inner_; }

 private:
  std::unique_ptr<sim::Process> inner_;
};

TEST(Approver, DuplicateDeliveryIsIdempotent) {
  Fixture fx(60);
  std::vector<Value> inputs(60, kZero);
  for (std::size_t i = 0; i < 30; ++i) inputs[i] = kOne;

  auto run = [&](bool doubled) {
    sim::SimConfig cfg;
    cfg.n = 60;
    cfg.seed = 97;
    auto sim = std::make_unique<sim::Simulation>(cfg);
    for (std::size_t i = 0; i < 60; ++i) {
      auto host = std::make_unique<ApproverHost>(fx.config("apv"), inputs[i]);
      if (doubled)
        sim->add_process(std::make_unique<DeliverTwice>(std::move(host)));
      else
        sim->add_process(std::move(host));
    }
    sim->start();
    sim->run();
    return sim;
  };
  auto once = run(false);
  auto twice = run(true);

  for (sim::ProcessId i = 0; i < 60; ++i) {
    auto& a = dynamic_cast<ApproverHost&>(once->process(i)).approver();
    auto& b = dynamic_cast<ApproverHost&>(
                  dynamic_cast<DeliverTwice&>(twice->process(i)).inner())
                  .approver();
    ASSERT_EQ(a.done(), b.done()) << i;
    if (a.done()) EXPECT_EQ(a.output(), b.output()) << i;
  }
  // Identical sends: duplicates triggered no re-broadcasts, so the word
  // complexity is untouched.
  EXPECT_EQ(once->metrics().correct_words(), twice->metrics().correct_words());
  EXPECT_EQ(once->metrics().messages_sent(), twice->metrics().messages_sent());
  EXPECT_EQ(once->metrics().words_by_tag(), twice->metrics().words_by_tag());
}

TEST(Approver, RejectsBadConstruction) {
  Fixture fx(40);
  EXPECT_THROW(Approver(fx.config("x"), 7), PreconditionError);  // bad value
  Approver::Config cfg = fx.config("x");
  cfg.signer = nullptr;
  EXPECT_THROW(Approver(cfg, kZero), PreconditionError);
}

TEST(Approver, OutputBeforeDoneThrows) {
  Fixture fx(40);
  Approver a(fx.config("x"), kZero);
  EXPECT_THROW(a.output(), PreconditionError);
}

}  // namespace
}  // namespace coincidence::ba
