#include "ba/rbc.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "common/ser.h"
#include "crypto/sha256.h"
#include "sim/simulation.h"

namespace coincidence::ba {
namespace {

class RbcHost final : public sim::Process {
 public:
  RbcHost(ReliableBroadcast::Config cfg, std::optional<Bytes> to_send)
      : rbc_(std::move(cfg),
             [this](sim::ProcessId src, const Bytes& payload) {
               delivered[src] = payload;
             }),
        to_send_(std::move(to_send)) {}

  void on_start(sim::Context& ctx) override {
    if (to_send_) rbc_.broadcast(ctx, *to_send_);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    rbc_.handle(ctx, msg);
  }

  std::map<sim::ProcessId, Bytes> delivered;

 private:
  ReliableBroadcast rbc_;
  std::optional<Bytes> to_send_;
};

ReliableBroadcast::Config rbc_cfg(std::size_t n, std::size_t f) {
  ReliableBroadcast::Config cfg;
  cfg.tag = "rbc";
  cfg.n = n;
  cfg.f = f;
  return cfg;
}

TEST(Rbc, CorrectSourceDeliveredByAll) {
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.seed = 1;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i) {
    std::optional<Bytes> send;
    if (i == 0) send = bytes_of("hello");
    sim.add_process(std::make_unique<RbcHost>(rbc_cfg(7, 2), send));
  }
  sim.start();
  sim.run();
  for (sim::ProcessId i = 0; i < 7; ++i) {
    auto& host = dynamic_cast<RbcHost&>(sim.process(i));
    ASSERT_EQ(host.delivered.count(0), 1u) << i;
    EXPECT_EQ(host.delivered[0], bytes_of("hello"));
  }
}

TEST(Rbc, AllSourcesConcurrently) {
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.seed = 3;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<RbcHost>(
        rbc_cfg(7, 2), bytes_of("m" + std::to_string(i))));
  sim.start();
  sim.run();
  for (sim::ProcessId i = 0; i < 7; ++i) {
    auto& host = dynamic_cast<RbcHost&>(sim.process(i));
    EXPECT_EQ(host.delivered.size(), 7u);
    for (sim::ProcessId s = 0; s < 7; ++s)
      EXPECT_EQ(host.delivered[s], bytes_of("m" + std::to_string(s)));
  }
}

TEST(Rbc, SilentSourceDeliversNothingButOthersUnaffected) {
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.seed = 5;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<RbcHost>(
        rbc_cfg(7, 2), bytes_of("m" + std::to_string(i))));
  sim.corrupt(6, sim::FaultPlan::crash());
  sim.start();
  sim.run();
  for (sim::ProcessId i = 0; i < 6; ++i) {
    auto& host = dynamic_cast<RbcHost&>(sim.process(i));
    EXPECT_EQ(host.delivered.count(6), 0u);
    for (sim::ProcessId s = 0; s < 6; ++s)
      EXPECT_EQ(host.delivered.count(s), 1u) << i << "<-" << s;
  }
}

TEST(Rbc, EquivocatingSourceNeverSplitsDelivery) {
  // Byzantine source sends initial("a") to half and initial("b") to the
  // other half: totality says nobody delivers conflicting payloads.
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 1;
  cfg.seed = 7;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<RbcHost>(rbc_cfg(7, 2), std::nullopt));
  sim.corrupt(0, sim::FaultPlan::silent());
  sim.start();
  for (sim::ProcessId to = 1; to < 7; ++to) {
    Bytes payload = to <= 3 ? bytes_of("a") : bytes_of("b");
    sim.inject(0, to, "rbc/initial", payload, 1);
  }
  sim.run();

  std::optional<Bytes> delivered_value;
  for (sim::ProcessId i = 1; i < 7; ++i) {
    auto& host = dynamic_cast<RbcHost&>(sim.process(i));
    auto it = host.delivered.find(0);
    if (it == host.delivered.end()) continue;
    if (!delivered_value) delivered_value = it->second;
    EXPECT_EQ(*delivered_value, it->second) << i;  // agreement on payload
  }
}

TEST(Rbc, ForgedReadyQuorumCannotFakeDelivery) {
  // f Byzantine processes send <ready, src=0, "forged"> without any
  // initial/echo: 2f+1 readies are required, and only f can be forged
  // (f+1 amplification needs a correct ready, which needs an echo quorum).
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.seed = 9;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<RbcHost>(rbc_cfg(7, 2), std::nullopt));
  sim.corrupt(5, sim::FaultPlan::silent());
  sim.corrupt(6, sim::FaultPlan::silent());
  sim.start();
  // READY now carries (source, digest): forge a well-formed one for a
  // payload nobody echoed.
  const crypto::Digest d = crypto::sha256(bytes_of("forged"));
  Writer w;
  w.u32(0).blob(BytesView(d.data(), d.size()));
  for (sim::ProcessId from : {5, 6})
    for (sim::ProcessId to = 0; to < 5; ++to)
      sim.inject(from, to, "rbc/ready", w.bytes(), 5);
  sim.run();
  for (sim::ProcessId i = 0; i < 5; ++i) {
    auto& host = dynamic_cast<RbcHost&>(sim.process(i));
    EXPECT_EQ(host.delivered.count(0), 0u) << i;
  }
}

TEST(Rbc, MalformedEchoIgnored) {
  sim::SimConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 11;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 4; ++i)
    sim.add_process(std::make_unique<RbcHost>(
        rbc_cfg(4, 1), i == 0 ? std::optional<Bytes>(bytes_of("x"))
                              : std::nullopt));
  sim.corrupt(3, sim::FaultPlan::silent());
  sim.start();
  sim.inject(3, 1, "rbc/echo", bytes_of("garbage-not-codec"), 1);
  sim.inject(3, 1, "rbc/ready", Bytes{}, 1);
  sim.run();
  // Normal delivery still happens; no crash on malformed inputs.
  auto& host = dynamic_cast<RbcHost&>(sim.process(1));
  EXPECT_EQ(host.delivered.count(0), 1u);
}

TEST(Rbc, RequiresN3f) {
  ReliableBroadcast::Config cfg;
  cfg.tag = "x";
  cfg.n = 6;
  cfg.f = 2;
  EXPECT_THROW(ReliableBroadcast(cfg, nullptr), PreconditionError);
}

}  // namespace
}  // namespace coincidence::ba
