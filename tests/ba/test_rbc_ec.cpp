// Erasure-coded reliable broadcast (ba/rbc_ec.h): delivery semantics
// must match Bracha's RBC — deliver-once per source, agreement on the
// payload, totality — while the wire carries fragments and hashes
// instead of n² copies of the value. The Byzantine cases target the two
// attacks the coding layer introduces: root equivocation (two trees for
// one source) and inconsistent dispersal (one tree over fragments that
// are not a codeword, caught by the decode → re-encode check).
#include "ba/rbc_ec.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "common/errors.h"
#include "common/ser.h"
#include "crypto/merkle.h"
#include "crypto/reed_solomon.h"
#include "sim/simulation.h"

namespace coincidence::ba {
namespace {

class EcHost final : public sim::Process {
 public:
  EcHost(Broadcast::Config cfg, std::optional<Bytes> to_send)
      : rbc_(std::move(cfg),
             [this](sim::ProcessId src, const Bytes& payload) {
               delivered[src] = payload;
             }),
        to_send_(std::move(to_send)) {}

  void on_start(sim::Context& ctx) override {
    if (to_send_) rbc_.broadcast(ctx, *to_send_);
  }
  void on_message(sim::Context& ctx, const sim::Message& msg) override {
    rbc_.handle(ctx, msg);
  }

  std::map<sim::ProcessId, Bytes> delivered;

 private:
  EcBroadcast rbc_;
  std::optional<Bytes> to_send_;
};

Broadcast::Config ec_cfg(std::size_t n, std::size_t f) {
  Broadcast::Config cfg;
  cfg.tag = "rbc";
  cfg.n = n;
  cfg.f = f;
  return cfg;
}

Bytes big_value(const std::string& seed, std::size_t size) {
  Bytes v;
  v.reserve(size);
  while (v.size() < size) {
    for (char c : seed) {
      if (v.size() == size) break;
      v.push_back(static_cast<std::uint8_t>(
          c ^ static_cast<char>(v.size() & 0x7f)));
    }
  }
  return v;
}

/// Wire-format initial for leaf `index` of `tree`: what a (possibly
/// dishonest) source would send that process.
Bytes initial_wire(std::uint64_t value_size, const Bytes& fragment,
                   const crypto::MerkleTree& tree, std::size_t index) {
  Bytes branch_cat;
  for (const crypto::Digest& d : tree.branch(index))
    branch_cat.insert(branch_cat.end(), d.begin(), d.end());
  Writer w;
  w.u64(value_size).blob(fragment).blob(branch_cat);
  return w.take();
}

TEST(RbcEc, CorrectSourceDeliveredByAll) {
  // A value long enough that every fragment carries real data and the
  // ragged tail exercises the zero-padding path.
  const Bytes value = big_value("ec-delivers", 611);
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.seed = 1;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i) {
    std::optional<Bytes> send;
    if (i == 0) send = value;
    sim.add_process(std::make_unique<EcHost>(ec_cfg(7, 2), send));
  }
  sim.start();
  sim.run();
  for (sim::ProcessId i = 0; i < 7; ++i) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    ASSERT_EQ(host.delivered.count(0), 1u) << i;
    EXPECT_EQ(host.delivered[0], value);
  }
}

TEST(RbcEc, AllSourcesConcurrentlyIncludingEmpty) {
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.seed = 3;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<EcHost>(
        ec_cfg(7, 2),
        i == 3 ? Bytes{} : big_value("m" + std::to_string(i), 64 + i)));
  sim.start();
  sim.run();
  for (sim::ProcessId i = 0; i < 7; ++i) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    ASSERT_EQ(host.delivered.size(), 7u) << i;
    EXPECT_EQ(host.delivered[3], Bytes{});
    for (sim::ProcessId s = 0; s < 7; ++s)
      if (s != 3)
        EXPECT_EQ(host.delivered[s], big_value("m" + std::to_string(s), 64 + s));
  }
}

TEST(RbcEc, UninitialedProcessesStillDeliverFromEchoes) {
  // The source omits two processes entirely (selective fault): they
  // never see an initial or their own fragment, yet reconstruct the
  // value from the other processes' echoed fragments — the dispersal
  // property Bracha's RBC gets trivially by shipping full payloads.
  const Bytes value = big_value("reconstruct-me", 300);
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 1;
  cfg.seed = 5;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i) {
    std::optional<Bytes> send;
    if (i == 0) send = value;
    sim.add_process(std::make_unique<EcHost>(ec_cfg(7, 2), send));
  }
  sim.corrupt(0, sim::FaultPlan::selective({0, 1, 2, 3, 4}));
  sim.start();
  sim.run();
  for (sim::ProcessId i : {5, 6}) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    ASSERT_EQ(host.delivered.count(0), 1u) << i;
    EXPECT_EQ(host.delivered[0], value);
  }
}

TEST(RbcEc, RootEquivocatingSourceNeverSplitsDelivery) {
  // The source builds two honest dispersals (different values, different
  // roots) and sends half the processes fragments of each. Echo-once-
  // per-source caps either root's echo count below a double quorum: at
  // most one value can ever be delivered, by anyone.
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 1;
  cfg.seed = 7;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<EcHost>(ec_cfg(7, 2), std::nullopt));
  sim.corrupt(0, sim::FaultPlan::silent());
  sim.start();

  crypto::ReedSolomon rs(7, 3);
  const Bytes va = big_value("equivocation-a", 120);
  const Bytes vb = big_value("equivocation-b", 120);
  const auto fa = rs.encode(va);
  const auto fb = rs.encode(vb);
  const crypto::MerkleTree ta(fa);
  const crypto::MerkleTree tb(fb);
  for (sim::ProcessId to = 1; to < 7; ++to) {
    const bool a_side = to <= 3;
    const auto& frags = a_side ? fa : fb;
    const auto& tree = a_side ? ta : tb;
    sim.inject(0, to, "rbc/initial",
               initial_wire(120, frags[to], tree, to), 1);
  }
  sim.run();

  std::optional<Bytes> delivered_value;
  for (sim::ProcessId i = 1; i < 7; ++i) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    auto it = host.delivered.find(0);
    if (it == host.delivered.end()) continue;
    if (!delivered_value) delivered_value = it->second;
    EXPECT_EQ(*delivered_value, it->second) << i;
  }
}

TEST(RbcEc, InconsistentDispersalPoisonedNobodyDelivers) {
  // One Merkle tree over fragments that are NOT a Reed–Solomon codeword
  // (a corrupted parity leaf): every branch verifies, echoes and readies
  // reach quorum, but the decode → re-encode check fails identically at
  // every correct process — deliver nothing, crash nothing.
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 1;
  cfg.seed = 9;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<EcHost>(ec_cfg(7, 2), std::nullopt));
  sim.corrupt(0, sim::FaultPlan::silent());
  sim.start();

  crypto::ReedSolomon rs(7, 3);
  auto frags = rs.encode(big_value("inconsistent", 200));
  frags[5][3] ^= 0x77;  // off-codeword, committed as-is
  const crypto::MerkleTree tree(frags);
  for (sim::ProcessId to = 1; to < 7; ++to)
    sim.inject(0, to, "rbc/initial", initial_wire(200, frags[to], tree, to),
               1);
  sim.run();
  for (sim::ProcessId i = 1; i < 7; ++i) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    EXPECT_EQ(host.delivered.count(0), 0u) << i;
  }
}

TEST(RbcEc, SizeEquivocationUnderOneRootRejected) {
  // Same tree, two claimed value sizes. The size is bound into the
  // ready-quorum key H(root ‖ |v|), and fragment lengths are validated
  // against ⌈|v|/k⌉ — the wrong-size flow never verifies, so agreement
  // cannot split on length.
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 1;
  cfg.seed = 11;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i)
    sim.add_process(std::make_unique<EcHost>(ec_cfg(7, 2), std::nullopt));
  sim.corrupt(0, sim::FaultPlan::silent());
  sim.start();

  crypto::ReedSolomon rs(7, 3);
  const Bytes value = big_value("size-equivocation", 150);
  const auto frags = rs.encode(value);
  const crypto::MerkleTree tree(frags);
  for (sim::ProcessId to = 1; to < 7; ++to) {
    // Half get the true size, half a truncated claim over the same tree.
    const std::uint64_t claimed = to <= 3 ? 150 : 100;
    sim.inject(0, to, "rbc/initial",
               initial_wire(claimed, frags[to], tree, to), 1);
  }
  sim.run();

  for (sim::ProcessId i = 1; i < 7; ++i) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    auto it = host.delivered.find(0);
    if (it != host.delivered.end())
      EXPECT_EQ(it->second, value) << i;  // only the true size can win
  }
}

TEST(RbcEc, SurvivesCrashRecoverChurn) {
  // Two processes crash mid-dissemination and restart with amnesia
  // (kCrashRecover): the remaining five — exactly the echo quorum at
  // n=7, f=1 — must still complete delivery of a correct broadcast.
  const Bytes value = big_value("churn-survivor", 256);
  sim::SimConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.seed = 13;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 7; ++i) {
    std::optional<Bytes> send;
    if (i == 0) send = value;
    sim.add_process(std::make_unique<EcHost>(ec_cfg(7, 1), send));
  }
  sim.corrupt(5, sim::FaultPlan::crash_recover(40));
  sim.corrupt(6, sim::FaultPlan::crash_recover(60));
  sim.start();
  sim.run();
  for (sim::ProcessId i = 0; i < 5; ++i) {
    auto& host = dynamic_cast<EcHost&>(sim.process(i));
    ASSERT_EQ(host.delivered.count(0), 1u) << i;
    EXPECT_EQ(host.delivered[0], value);
  }
}

TEST(RbcEc, MalformedMessagesIgnored) {
  sim::SimConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.seed = 15;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < 4; ++i)
    sim.add_process(std::make_unique<EcHost>(
        ec_cfg(4, 1),
        i == 0 ? std::optional<Bytes>(big_value("x", 40)) : std::nullopt));
  sim.corrupt(3, sim::FaultPlan::silent());
  sim.start();
  sim.inject(3, 1, "rbc/initial", bytes_of("garbage-not-codec"), 1);
  sim.inject(3, 1, "rbc/echo", bytes_of("still-garbage"), 1);
  sim.inject(3, 1, "rbc/ready", Bytes{}, 1);
  // Well-formed ready for a flow nobody echoed: tallied, never quorate.
  Writer w;
  w.u32(0).blob(Bytes(32, 0xab));
  sim.inject(3, 1, "rbc/ready", w.bytes(), 5);
  sim.run();
  auto& host = dynamic_cast<EcHost&>(sim.process(1));
  ASSERT_EQ(host.delivered.count(0), 1u);
  EXPECT_EQ(host.delivered[0], big_value("x", 40));
}

TEST(RbcEc, ConstructorEnforcesLimits) {
  EXPECT_THROW(EcBroadcast(ec_cfg(6, 2), nullptr), PreconditionError);
  // GF(2^8) field cap: 256 processes cannot run the EC backend.
  EXPECT_THROW(EcBroadcast(ec_cfg(256, 5), nullptr), PreconditionError);
}

}  // namespace
}  // namespace coincidence::ba
