// Tests for the Table-1 baseline protocols: Ben-Or, Bracha, and MMR
// (the latter wired to both the Algorithm-1 shared coin and the Rabin
// dealer coin).
#include <gtest/gtest.h>

#include "ba/ben_or.h"
#include "ba/bracha.h"
#include "ba/mmr.h"
#include "ba_harness.h"
#include "coin/dealer_coin.h"
#include "coin/shared_coin.h"
#include "common/errors.h"
#include "crypto/fast_vrf.h"

namespace coincidence::ba {
namespace {

using testing::BaRunResult;
using testing::BaRunSpec;
using testing::mixed_inputs;
using testing::run_ba;

// ------------------------------------------------------------- Ben-Or --

testing::BaFactory ben_or_factory(std::size_t n, std::size_t f) {
  return [n, f](sim::ProcessId, Value input) {
    BenOr::Config cfg;
    cfg.n = n;
    cfg.f = f;
    return std::make_unique<BenOr>(cfg, input);
  };
}

TEST(BenOr, ValidityUnanimous) {
  for (Value v : {kZero, kOne}) {
    BaRunSpec spec;
    spec.n = 6;
    spec.seed = 3 + v;
    spec.inputs = std::vector<Value>(6, v);
    BaRunResult r = run_ba(spec, ben_or_factory(6, 1));
    ASSERT_TRUE(r.all_correct_decided());
    EXPECT_EQ(*r.agreement(), static_cast<int>(v));
    EXPECT_EQ(r.max_decided_round(), 0u);  // unanimity decides in round 0
  }
}

TEST(BenOr, AgreementOnSplitInputs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BaRunSpec spec;
    spec.n = 6;
    spec.seed = 100 + seed;
    spec.inputs = mixed_inputs(6, 3);
    BaRunResult r = run_ba(spec, ben_or_factory(6, 1));
    ASSERT_TRUE(r.all_correct_decided()) << seed;
    EXPECT_TRUE(r.agreement().has_value()) << seed;
  }
}

TEST(BenOr, ToleratesOneByzantine) {
  BaRunSpec spec;
  spec.n = 6;
  spec.seed = 9;
  spec.f_budget = 1;
  spec.inputs = std::vector<Value>(6, kOne);
  spec.corruptions = {{5, sim::FaultPlan::junk()}};
  BaRunResult r = run_ba(spec, ben_or_factory(6, 1));
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_EQ(*r.agreement(), 1);
}

TEST(BenOr, RequiresN5f) {
  BenOr::Config cfg;
  cfg.n = 5;
  cfg.f = 1;
  EXPECT_THROW(BenOr(cfg, kZero), PreconditionError);
}

TEST(BenOr, LocalCoinCanTakeMultipleRounds) {
  // With split inputs some seeds need > 1 round — the qualitative cost of
  // a local coin (the scaling story lives in bench/table1_comparison).
  std::uint64_t max_round = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    BaRunSpec spec;
    spec.n = 6;
    spec.seed = 1000 + seed;
    spec.inputs = mixed_inputs(6, 3);
    BaRunResult r = run_ba(spec, ben_or_factory(6, 1));
    if (r.all_correct_decided()) max_round = std::max(max_round, r.max_decided_round());
  }
  EXPECT_GE(max_round, 1u);
}

// ------------------------------------------------------------- Bracha --

testing::BaFactory bracha_factory(std::size_t n, std::size_t f) {
  return [n, f](sim::ProcessId, Value input) {
    Bracha::Config cfg;
    cfg.n = n;
    cfg.f = f;
    return std::make_unique<Bracha>(cfg, input);
  };
}

TEST(Bracha, ValidityUnanimous) {
  for (Value v : {kZero, kOne}) {
    BaRunSpec spec;
    spec.n = 7;
    spec.seed = 5 + v;
    spec.inputs = std::vector<Value>(7, v);
    BaRunResult r = run_ba(spec, bracha_factory(7, 2));
    ASSERT_TRUE(r.all_correct_decided());
    EXPECT_EQ(*r.agreement(), static_cast<int>(v));
  }
}

TEST(Bracha, AgreementOnSplitInputs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    BaRunSpec spec;
    spec.n = 7;
    spec.seed = 40 + seed;
    spec.inputs = mixed_inputs(7, 3);
    BaRunResult r = run_ba(spec, bracha_factory(7, 2));
    ASSERT_TRUE(r.all_correct_decided()) << seed;
    EXPECT_TRUE(r.agreement().has_value()) << seed;
  }
}

TEST(Bracha, ToleratesFByzantine) {
  BaRunSpec spec;
  spec.n = 7;
  spec.seed = 8;
  spec.f_budget = 2;
  spec.inputs = std::vector<Value>(7, kZero);
  spec.corruptions = {{5, sim::FaultPlan::crash()},
                      {6, sim::FaultPlan::junk()}};
  BaRunResult r = run_ba(spec, bracha_factory(7, 2));
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_EQ(*r.agreement(), 0);
}

TEST(Bracha, RequiresN3f) {
  Bracha::Config cfg;
  cfg.n = 6;
  cfg.f = 2;
  EXPECT_THROW(Bracha(cfg, kZero), PreconditionError);
}

TEST(Bracha, UsesCubicMessageBudget) {
  // n RBC broadcasts per step, each O(n²) messages: the baseline's
  // complexity signature that Table 1 contrasts against.
  BaRunSpec spec;
  spec.n = 7;
  spec.seed = 6;
  spec.inputs = std::vector<Value>(7, kOne);
  BaRunResult r = run_ba(spec, bracha_factory(7, 2));
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_GT(r.total_messages, 7ull * 7 * 7);  // > n³ even on the fast path
}

// ---------------------------------------------------------------- MMR --

struct MmrSharedCoinFixture {
  explicit MmrSharedCoinFixture(std::size_t n, std::size_t f,
                                std::uint64_t key_seed = 13)
      : n(n),
        f(f),
        registry(crypto::KeyRegistry::create_for(n, key_seed)),
        vrf(std::make_shared<crypto::FastVrf>(registry)) {}

  testing::BaFactory factory() const {
    return [this](sim::ProcessId, Value input) {
      Mmr::Config cfg;
      cfg.n = n;
      cfg.f = f;
      cfg.make_coin = [this](std::uint64_t round, const std::string& tag) {
        coin::SharedCoin::Config ccfg;
        ccfg.tag = tag;
        ccfg.round = round;
        ccfg.n = n;
        ccfg.f = f;
        ccfg.vrf = vrf;
        ccfg.registry = registry;
        return std::make_unique<coin::SharedCoin>(ccfg);
      };
      return std::make_unique<Mmr>(cfg, input);
    };
  }

  std::size_t n, f;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::FastVrf> vrf;
};

TEST(MmrSharedCoin, ValidityUnanimous) {
  MmrSharedCoinFixture fx(10, 3);
  for (Value v : {kZero, kOne}) {
    BaRunSpec spec;
    spec.n = 10;
    spec.seed = 21 + v;
    spec.inputs = std::vector<Value>(10, v);
    BaRunResult r = run_ba(spec, fx.factory());
    ASSERT_TRUE(r.all_correct_decided());
    EXPECT_EQ(*r.agreement(), static_cast<int>(v));
  }
}

TEST(MmrSharedCoin, AgreementOnSplitInputs) {
  MmrSharedCoinFixture fx(10, 3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BaRunSpec spec;
    spec.n = 10;
    spec.seed = 300 + seed;
    spec.inputs = mixed_inputs(10, 5);
    BaRunResult r = run_ba(spec, fx.factory());
    ASSERT_TRUE(r.all_correct_decided()) << seed;
    EXPECT_TRUE(r.agreement().has_value()) << seed;
  }
}

TEST(MmrSharedCoin, ToleratesFByzantine) {
  MmrSharedCoinFixture fx(10, 3);
  BaRunSpec spec;
  spec.n = 10;
  spec.seed = 17;
  spec.f_budget = 3;
  spec.inputs = mixed_inputs(10, 4);
  spec.corruptions = {{0, sim::FaultPlan::silent()},
                      {4, sim::FaultPlan::crash()},
                      {9, sim::FaultPlan::junk()}};
  BaRunResult r = run_ba(spec, fx.factory());
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_TRUE(r.agreement().has_value());
}

TEST(MmrSharedCoin, ConstantExpectedRounds) {
  MmrSharedCoinFixture fx(10, 3);
  std::uint64_t worst = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    BaRunSpec spec;
    spec.n = 10;
    spec.seed = 600 + seed;
    spec.inputs = mixed_inputs(10, 5);
    BaRunResult r = run_ba(spec, fx.factory());
    ASSERT_TRUE(r.all_correct_decided()) << seed;
    worst = std::max(worst, r.max_decided_round());
  }
  EXPECT_LE(worst, 10u);  // shared coin => geometric tail, small constant
}

struct MmrDealerFixture {
  MmrDealerFixture(std::size_t n, std::size_t f)
      : n(n),
        f(f),
        setup(std::make_shared<coin::DealerCoinSetup>(n, f, 256, 99)) {}

  testing::BaFactory factory() const {
    return [this](sim::ProcessId, Value input) {
      Mmr::Config cfg;
      cfg.tag = "rabin";
      cfg.n = n;
      cfg.f = f;
      cfg.make_coin = [this](std::uint64_t round, const std::string& tag) {
        coin::DealerCoin::Config ccfg;
        ccfg.tag = tag;
        ccfg.round = round;
        ccfg.setup = setup;
        return std::make_unique<coin::DealerCoin>(ccfg);
      };
      return std::make_unique<Mmr>(cfg, input);
    };
  }

  std::size_t n, f;
  std::shared_ptr<coin::DealerCoinSetup> setup;
};

TEST(MmrDealerCoin, RabinStyleAgreementAndTermination) {
  MmrDealerFixture fx(10, 3);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    BaRunSpec spec;
    spec.n = 10;
    spec.seed = 70 + seed;
    spec.inputs = mixed_inputs(10, 5);
    BaRunResult r = run_ba(spec, fx.factory());
    ASSERT_TRUE(r.all_correct_decided()) << seed;
    EXPECT_TRUE(r.agreement().has_value()) << seed;
  }
}

TEST(MmrDealerCoin, PerfectCoinDecidesFast) {
  MmrDealerFixture fx(10, 3);
  std::uint64_t worst = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BaRunSpec spec;
    spec.n = 10;
    spec.seed = 90 + seed;
    spec.inputs = mixed_inputs(10, 5);
    BaRunResult r = run_ba(spec, fx.factory());
    ASSERT_TRUE(r.all_correct_decided());
    worst = std::max(worst, r.max_decided_round());
  }
  EXPECT_LE(worst, 12u);
}

TEST(Mmr, RejectsBadConstruction) {
  Mmr::Config cfg;
  cfg.n = 9;
  cfg.f = 3;  // n > 3f violated
  cfg.make_coin = [](std::uint64_t, const std::string&) {
    return std::unique_ptr<coin::CoinProtocol>();
  };
  EXPECT_THROW(Mmr(cfg, kZero), PreconditionError);
  cfg.n = 10;
  cfg.make_coin = nullptr;
  EXPECT_THROW(Mmr(cfg, kZero), PreconditionError);
}

}  // namespace
}  // namespace coincidence::ba
