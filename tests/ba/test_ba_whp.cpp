#include "ba/ba_whp.h"

#include <gtest/gtest.h>

#include "ba_harness.h"
#include "common/errors.h"
#include "crypto/fast_vrf.h"

namespace coincidence::ba {
namespace {

using testing::BaRunResult;
using testing::BaRunSpec;
using testing::mixed_inputs;
using testing::run_ba;

struct Fixture {
  explicit Fixture(std::size_t n, double eps = 0.25, double d = 0.02,
                   std::uint64_t key_seed = 11)
      : n(n),
        params(committee::Params::derive(n, eps, d, /*strict=*/false)),
        registry(crypto::KeyRegistry::create_for(n, key_seed)),
        vrf(std::make_shared<crypto::FastVrf>(registry)),
        sampler(std::make_shared<committee::Sampler>(vrf, registry,
                                                     params.sample_prob())),
        signer(std::make_shared<crypto::Signer>(registry)) {}

  testing::BaFactory factory() const {
    return [this](sim::ProcessId, Value input) {
      BaWhp::Config cfg;
      cfg.tag = "ba";
      cfg.params = params;
      cfg.vrf = vrf;
      cfg.registry = registry;
      cfg.sampler = sampler;
      cfg.signer = signer;
      cfg.max_rounds = 32;
      return std::make_unique<BaWhp>(cfg, input);
    };
  }

  std::size_t n;
  committee::Params params;
  std::shared_ptr<crypto::KeyRegistry> registry;
  std::shared_ptr<crypto::FastVrf> vrf;
  std::shared_ptr<committee::Sampler> sampler;
  std::shared_ptr<crypto::Signer> signer;
};

TEST(BaWhp, ValidityAllProposeSame) {
  Fixture fx(60);
  for (Value v : {kZero, kOne}) {
    BaRunSpec spec;
    spec.n = 60;
    spec.seed = 42 + v;
    spec.inputs = std::vector<Value>(60, v);
    BaRunResult r = run_ba(spec, fx.factory());
    ASSERT_TRUE(r.all_correct_decided()) << value_name(v);
    auto bit = r.agreement();
    ASSERT_TRUE(bit.has_value());
    EXPECT_EQ(*bit, static_cast<int>(v));
    // Validity path: unanimous estimate decides in the very first round.
    EXPECT_EQ(r.max_decided_round(), 0u);
  }
}

TEST(BaWhp, AgreementOnSplitInputs) {
  Fixture fx(60);
  int decided_runs = 0;
  const int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    BaRunSpec spec;
    spec.n = 60;
    spec.seed = 100 + run;
    spec.inputs = mixed_inputs(60, 30);
    BaRunResult r = run_ba(spec, fx.factory());
    if (!r.all_correct_decided()) continue;  // whp failure: counted below
    ++decided_runs;
    EXPECT_TRUE(r.agreement().has_value()) << "run " << run;
  }
  EXPECT_GE(decided_runs, kRuns * 3 / 4);
}

TEST(BaWhp, DecidesInFewRounds) {
  // Lemma 6.14: expected rounds <= 1/rho, a constant. With the relaxed
  // small-n parameters the empirical numbers stay small.
  Fixture fx(60);
  std::uint64_t worst = 0;
  int decided_runs = 0;
  for (int run = 0; run < 10; ++run) {
    BaRunSpec spec;
    spec.n = 60;
    spec.seed = 500 + run;
    spec.inputs = mixed_inputs(60, 20);
    BaRunResult r = run_ba(spec, fx.factory());
    if (!r.all_correct_decided()) continue;
    ++decided_runs;
    worst = std::max(worst, r.max_decided_round());
  }
  ASSERT_GT(decided_runs, 0);
  EXPECT_LE(worst, 8u);
}

TEST(BaWhp, ToleratesByzantineMix) {
  Fixture fx(60);
  BaRunSpec spec;
  spec.n = 60;
  spec.seed = 77;
  spec.f_budget = 4;
  spec.inputs = mixed_inputs(60, 25);
  spec.corruptions = {{1, sim::FaultPlan::silent()},
                      {12, sim::FaultPlan::junk()},
                      {33, sim::FaultPlan::crash()},
                      {54, sim::FaultPlan::selective({0, 2, 4, 6, 8})}};
  BaRunResult r = run_ba(spec, fx.factory());
  EXPECT_TRUE(r.all_correct_decided());
  EXPECT_TRUE(r.agreement().has_value());
}

TEST(BaWhp, ValidityHoldsUnderCrashes) {
  // All correct propose 1; crashed minority cannot flip the outcome.
  Fixture fx(60);
  BaRunSpec spec;
  spec.n = 60;
  spec.seed = 88;
  spec.f_budget = 4;
  spec.inputs = std::vector<Value>(60, kOne);
  spec.corruptions = {{0, sim::FaultPlan::crash()},
                      {1, sim::FaultPlan::crash()},
                      {2, sim::FaultPlan::crash()},
                      {3, sim::FaultPlan::crash()}};
  BaRunResult r = run_ba(spec, fx.factory());
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_EQ(*r.agreement(), 1);
}

TEST(BaWhp, SubQuadraticWordFootprint) {
  // Õ(n) claim, operationally: a decision costs far fewer correct-process
  // words than an O(n²) all-to-all protocol would pay per phase pair.
  Fixture fx(100);
  BaRunSpec spec;
  spec.n = 100;
  spec.seed = 5;
  spec.inputs = std::vector<Value>(100, kZero);
  BaRunResult r = run_ba(spec, fx.factory());
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_GT(r.correct_words, 0u);
  // The real scaling assertion lives in bench/word_scaling (the n log²n
  // vs n² crossover sits beyond laptop-simulable n). Here, a sanity
  // ceiling from the paper's own formula: O(n λ²) words per round, with
  // the constant dominated by the two approvers' ok proofs.
  double lambda = fx.params.lambda;
  double per_round_bound = 8.0 * 100.0 * lambda * lambda;
  EXPECT_LT(static_cast<double>(r.correct_words) /
                static_cast<double>(r.max_decided_round() + 2),
            per_round_bound);
}

TEST(BaWhp, EstimateAndRoundAccessors) {
  Fixture fx(60);
  auto p = fx.factory()(0, kOne);
  auto& ba = dynamic_cast<BaWhp&>(*p);
  EXPECT_EQ(ba.estimate(), kOne);
  EXPECT_EQ(ba.current_round(), 0u);
  EXPECT_FALSE(ba.decided());
  EXPECT_THROW(ba.decision(), PreconditionError);
  EXPECT_THROW(ba.decided_round(), PreconditionError);
}

// Deterministic committee-tail wedge (DESIGN.md §5h): with key seed 15
// and slot tag "slot7", round 0's a2 echo committee of the viable value
// draws fewer than W live members once processes 46 and 47 fall silent,
// so no ok quorum can ever form and the round wedges forever. This is
// the root cause of the stalled slots in BENCH_session.json (7/8 and
// 14/16 decided). The pair of tests pins the repro and the fix.
BaRunSpec wedge_spec(const Fixture& fx) {
  BaRunSpec spec;
  spec.n = fx.n;
  spec.f_budget = 2;
  spec.seed = 23;
  spec.inputs = std::vector<Value>(fx.n, kZero);
  for (std::size_t i = 0; i < fx.n; ++i)
    spec.inputs[i] = static_cast<Value>(i % 2);
  spec.corruptions = {{46, sim::FaultPlan::silent()},
                      {47, sim::FaultPlan::silent()}};
  return spec;
}

testing::BaFactory wedge_factory(const Fixture& fx,
                                 std::uint64_t skip_timeout) {
  return [&fx, skip_timeout](sim::ProcessId, Value input) {
    BaWhp::Config cfg;
    cfg.tag = "slot7";
    cfg.params = fx.params;
    cfg.vrf = fx.vrf;
    cfg.registry = fx.registry;
    cfg.sampler = fx.sampler;
    cfg.signer = fx.signer;
    cfg.max_rounds = 32;
    cfg.skip_timeout = skip_timeout;
    return std::make_unique<BaWhp>(cfg, input);
  };
}

TEST(BaWhpSkip, CommitteeTailWedgesWithoutFallback) {
  Fixture fx(48, 0.25, 0.02, /*key_seed=*/15);
  BaRunResult r = run_ba(wedge_spec(fx), wedge_factory(fx, /*skip=*/0));
  // The run drains to quiescence with nobody decided — the liveness bug
  // this PR fixes. If this assertion ever flips, the repro drifted and
  // the skip tests below need a new seed.
  EXPECT_FALSE(r.all_correct_decided());
}

TEST(BaWhpSkip, SkipFallbackRescuesWedgedRound) {
  Fixture fx(48, 0.25, 0.02, /*key_seed=*/15);
  BaRunResult r = run_ba(wedge_spec(fx), wedge_factory(fx, /*skip=*/30000));
  ASSERT_TRUE(r.all_correct_decided());
  EXPECT_TRUE(r.agreement().has_value());
  // The wedge was in round 0; skipped rounds re-draw committees, so the
  // decision lands in round >= 1 — the honest rounds telemetry the
  // session bench now reports.
  EXPECT_GE(r.max_decided_round(), 1u);
}

TEST(BaWhp, RejectsBadConstruction) {
  Fixture fx(60);
  BaWhp::Config cfg;
  cfg.params = fx.params;
  cfg.vrf = fx.vrf;
  cfg.registry = fx.registry;
  cfg.sampler = fx.sampler;
  cfg.signer = fx.signer;
  EXPECT_THROW(BaWhp(cfg, kBot), PreconditionError);  // ⊥ not a valid input
  cfg.signer = nullptr;
  EXPECT_THROW(BaWhp(cfg, kZero), PreconditionError);
}

}  // namespace
}  // namespace coincidence::ba

namespace coincidence::ba {
namespace {

TEST(BaWhpRobustness, ByzantineFutureRoundFloodIsDropped) {
  // A Byzantine process spams messages tagged with absurd future rounds;
  // the backlog must not grow without bound and the run must still decide.
  Fixture fx(60);
  sim::SimConfig cfg;
  cfg.n = 60;
  cfg.f = 1;
  cfg.seed = 123;
  sim::Simulation sim(cfg);
  auto factory = fx.factory();
  for (sim::ProcessId i = 0; i < 60; ++i)
    sim.add_process(factory(i, i < 30 ? kOne : kZero));
  sim.corrupt(59, sim::FaultPlan::silent());
  sim.start();
  for (int k = 0; k < 200; ++k) {
    sim.inject(59, static_cast<sim::ProcessId>(k % 59),
               "ba/" + std::to_string(1000000 + k) + "/a1/init",
               bytes_of("flood"), 1);
  }
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i < 59; ++i)
      if (!dynamic_cast<BaProcess&>(sim.process(i)).decided()) return false;
    return true;
  });
  std::size_t decided = 0;
  for (sim::ProcessId i = 0; i < 59; ++i)
    decided += dynamic_cast<BaProcess&>(sim.process(i)).decided();
  EXPECT_GE(decided, 50u);  // whp tail allowance
}

}  // namespace
}  // namespace coincidence::ba
