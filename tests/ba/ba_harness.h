// Shared harness for Byzantine Agreement tests and benches: runs any
// BaProcess implementation on the simulator and summarizes the outcome.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ba/ba_process.h"
#include "ba/value.h"
#include "sim/simulation.h"

namespace coincidence::ba::testing {

using BaFactory =
    std::function<std::unique_ptr<BaProcess>(sim::ProcessId, Value input)>;

struct BaRunSpec {
  std::size_t n = 0;
  std::size_t f_budget = 0;
  std::uint64_t seed = 1;
  std::vector<Value> inputs;  // size n
  std::function<std::unique_ptr<sim::Adversary>()> adversary;
  std::vector<std::pair<sim::ProcessId, sim::FaultPlan>> corruptions;
};

struct BaRunResult {
  std::vector<std::optional<int>> decisions;  // per process
  std::vector<std::uint64_t> decided_rounds;
  std::vector<bool> corrupted;
  std::uint64_t correct_words = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t duration = 0;

  bool all_correct_decided() const {
    for (std::size_t i = 0; i < decisions.size(); ++i)
      if (!corrupted[i] && !decisions[i].has_value()) return false;
    return true;
  }

  /// The unanimous decision of correct processes; nullopt if any is
  /// missing or they disagree.
  std::optional<int> agreement() const {
    std::optional<int> bit;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      if (corrupted[i]) continue;
      if (!decisions[i].has_value()) return std::nullopt;
      if (!bit) bit = decisions[i];
      if (*bit != *decisions[i]) return std::nullopt;
    }
    return bit;
  }

  std::uint64_t max_decided_round() const {
    std::uint64_t r = 0;
    for (std::size_t i = 0; i < decisions.size(); ++i)
      if (!corrupted[i] && decisions[i]) r = std::max(r, decided_rounds[i]);
    return r;
  }
};

inline BaRunResult run_ba(const BaRunSpec& spec, const BaFactory& factory) {
  sim::SimConfig cfg;
  cfg.n = spec.n;
  cfg.f = spec.f_budget;
  cfg.seed = spec.seed;
  sim::Simulation sim(cfg);
  for (sim::ProcessId i = 0; i < spec.n; ++i)
    sim.add_process(factory(i, spec.inputs.at(i)));
  if (spec.adversary) sim.set_adversary(spec.adversary());
  for (const auto& [id, plan] : spec.corruptions) sim.corrupt(id, plan);
  sim.start();
  // Stop as soon as every correct process decided — the protocols keep a
  // post-decision grace window whose leftover traffic is irrelevant here.
  sim.run_until([&] {
    for (sim::ProcessId i = 0; i < spec.n; ++i) {
      if (sim.is_corrupted(i)) continue;
      if (!dynamic_cast<BaProcess&>(sim.process(i)).decided()) return false;
    }
    return true;
  });

  BaRunResult result;
  result.decisions.resize(spec.n);
  result.decided_rounds.resize(spec.n, 0);
  result.corrupted.resize(spec.n, false);
  for (sim::ProcessId i = 0; i < spec.n; ++i) {
    result.corrupted[i] = sim.is_corrupted(i);
    auto& p = dynamic_cast<BaProcess&>(sim.process(i));
    if (p.decided()) {
      result.decisions[i] = p.decision();
      result.decided_rounds[i] = p.decided_round();
    }
  }
  result.correct_words = sim.metrics().correct_words();
  result.total_messages = sim.metrics().messages_sent();
  for (sim::ProcessId i = 0; i < spec.n; ++i)
    result.duration = std::max(result.duration, sim.depth_of(i));
  return result;
}

/// n inputs: first `ones` processes propose 1, the rest 0.
inline std::vector<Value> mixed_inputs(std::size_t n, std::size_t ones) {
  std::vector<Value> inputs(n, kZero);
  for (std::size_t i = 0; i < ones && i < n; ++i) inputs[i] = kOne;
  return inputs;
}

}  // namespace coincidence::ba::testing
