#include "committee/sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.h"

#include "common/stats.h"
#include "crypto/fast_vrf.h"

namespace coincidence::committee {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 64;

  SamplerTest()
      : registry_(crypto::KeyRegistry::create_for(kN, 2024)),
        vrf_(std::make_shared<crypto::FastVrf>(registry_)),
        sampler_(std::make_shared<Sampler>(vrf_, registry_, 0.25)) {}

  std::shared_ptr<crypto::KeyRegistry> registry_;
  std::shared_ptr<crypto::FastVrf> vrf_;
  std::shared_ptr<Sampler> sampler_;
};

TEST_F(SamplerTest, ElectionIsDeterministic) {
  auto a = sampler_->sample(3, "seed");
  auto b = sampler_->sample(3, "seed");
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.proof, b.proof);
}

TEST_F(SamplerTest, HonestProofsVerify) {
  for (ProcessId i = 0; i < kN; ++i) {
    auto e = sampler_->sample(i, "round-1/first");
    EXPECT_EQ(sampler_->committee_val("round-1/first", i, e.proof), e.sampled);
  }
}

TEST_F(SamplerTest, NonMemberProofDoesNotValidateMembership) {
  // committee_val returns false for a correct proof of NON-membership.
  bool found_non_member = false;
  for (ProcessId i = 0; i < kN && !found_non_member; ++i) {
    auto e = sampler_->sample(i, "seed-x");
    if (!e.sampled) {
      found_non_member = true;
      EXPECT_FALSE(sampler_->committee_val("seed-x", i, e.proof));
    }
  }
  EXPECT_TRUE(found_non_member);
}

TEST_F(SamplerTest, ProofBoundToSeed) {
  // Find a process sampled for seed A; its proof must not validate for B.
  for (ProcessId i = 0; i < kN; ++i) {
    auto e = sampler_->sample(i, "seed-A");
    if (e.sampled) {
      EXPECT_FALSE(sampler_->committee_val("seed-B", i, e.proof));
      return;
    }
  }
  FAIL() << "no process sampled for seed-A at threshold 0.25";
}

TEST_F(SamplerTest, ProofBoundToIdentity) {
  for (ProcessId i = 0; i < kN; ++i) {
    auto e = sampler_->sample(i, "seed-C");
    if (e.sampled) {
      ProcessId other = (i + 1) % kN;
      EXPECT_FALSE(sampler_->committee_val("seed-C", other, e.proof));
      return;
    }
  }
  FAIL() << "no process sampled for seed-C";
}

TEST_F(SamplerTest, TamperedProofRejected) {
  for (ProcessId i = 0; i < kN; ++i) {
    auto e = sampler_->sample(i, "seed-D");
    if (e.sampled) {
      Bytes bad = e.proof;
      bad[bad.size() / 2] ^= 0x40;
      EXPECT_FALSE(sampler_->committee_val("seed-D", i, bad));
      return;
    }
  }
  FAIL() << "no process sampled for seed-D";
}

TEST_F(SamplerTest, GarbageProofRejected) {
  EXPECT_FALSE(sampler_->committee_val("s", 0, Bytes{}));
  EXPECT_FALSE(sampler_->committee_val("s", 0, bytes_of("garbage")));
  EXPECT_FALSE(sampler_->committee_val("s", kN + 5, Bytes{}));  // unknown id
}

TEST_F(SamplerTest, CommitteeSizeConcentratesAroundLambda) {
  // 200 committees at threshold 0.25 over 64 processes: mean size ≈ 16.
  std::vector<double> sizes;
  for (int c = 0; c < 200; ++c) {
    std::size_t size = 0;
    for (ProcessId i = 0; i < kN; ++i)
      if (sampler_->sample(i, "conc-" + std::to_string(c)).sampled) ++size;
    sizes.push_back(static_cast<double>(size));
  }
  Summary s = summarize(sizes);
  EXPECT_NEAR(s.mean, 16.0, 1.0);
  EXPECT_GT(s.stddev, 1.0);  // binomial, not degenerate
  EXPECT_LT(s.stddev, 8.0);
}

TEST_F(SamplerTest, DifferentSeedsGiveDifferentCommittees) {
  std::vector<ProcessId> a, b;
  for (ProcessId i = 0; i < kN; ++i) {
    if (sampler_->sample(i, "X").sampled) a.push_back(i);
    if (sampler_->sample(i, "Y").sampled) b.push_back(i);
  }
  EXPECT_NE(a, b);
}

TEST(Sampler, RejectsBadThreshold) {
  auto reg = crypto::KeyRegistry::create_for(4, 1);
  auto vrf = std::make_shared<crypto::FastVrf>(reg);
  EXPECT_THROW(Sampler(vrf, reg, 0.0), PreconditionError);
  EXPECT_THROW(Sampler(vrf, reg, 1.5), PreconditionError);
  EXPECT_THROW(Sampler(nullptr, reg, 0.5), PreconditionError);
}

TEST(Sampler, ElectionProbabilityMatchesThreshold) {
  // Property sweep: empirical election rate ≈ threshold.
  auto reg = crypto::KeyRegistry::create_for(256, 7);
  auto vrf = std::make_shared<crypto::FastVrf>(reg);
  for (double thr : {0.1, 0.5, 0.9}) {
    Sampler sampler(vrf, reg, thr);
    std::size_t elected = 0, trials = 0;
    for (int c = 0; c < 40; ++c)
      for (ProcessId i = 0; i < 256; ++i) {
        ++trials;
        if (sampler.sample(i, "p-" + std::to_string(c)).sampled) ++elected;
      }
    double rate = static_cast<double>(elected) / static_cast<double>(trials);
    EXPECT_NEAR(rate, thr, 0.02) << "threshold " << thr;
  }
}

}  // namespace
}  // namespace coincidence::committee

namespace coincidence::committee {
namespace {

TEST(CachingSampler, AgreesWithPlainSamplerEverywhere) {
  auto reg = crypto::KeyRegistry::create_for(32, 77);
  auto vrf = std::make_shared<crypto::FastVrf>(reg);
  Sampler plain(vrf, reg, 0.4);
  CachingSampler cached(vrf, reg, 0.4);
  for (ProcessId i = 0; i < 32; ++i) {
    for (const char* seed : {"a", "b", "a"}) {  // repeat to hit the cache
      auto p = plain.sample(i, seed);
      auto c = cached.sample(i, seed);
      EXPECT_EQ(p.sampled, c.sampled);
      EXPECT_EQ(p.proof, c.proof);
      EXPECT_EQ(plain.committee_val(seed, i, p.proof),
                cached.committee_val(seed, i, c.proof));
    }
  }
  EXPECT_EQ(cached.sample_cache_size(), 32u * 2u);  // "a" cached once
}

TEST(CachingSampler, CachesNegativeVerdictsToo) {
  auto reg = crypto::KeyRegistry::create_for(8, 78);
  auto vrf = std::make_shared<crypto::FastVrf>(reg);
  CachingSampler cached(vrf, reg, 0.4);
  Bytes garbage = bytes_of("not-a-proof");
  EXPECT_FALSE(cached.committee_val("s", 0, garbage));
  EXPECT_FALSE(cached.committee_val("s", 0, garbage));
  EXPECT_EQ(cached.val_cache_size(), 1u);
}

TEST(CachingSampler, DistinguishesProofsUnderOneKey) {
  // A forged proof and the honest proof for the same (seed, id) must get
  // independent verdicts — the cache key includes the proof bytes.
  auto reg = crypto::KeyRegistry::create_for(8, 79);
  auto vrf = std::make_shared<crypto::FastVrf>(reg);
  CachingSampler cached(vrf, reg, 0.99);  // nearly everyone sampled
  auto e = cached.sample(3, "s");
  ASSERT_TRUE(e.sampled);
  EXPECT_TRUE(cached.committee_val("s", 3, e.proof));
  Bytes forged = e.proof;
  forged[0] ^= 1;
  EXPECT_FALSE(cached.committee_val("s", 3, forged));
  EXPECT_TRUE(cached.committee_val("s", 3, e.proof));  // still cached true
}

}  // namespace
}  // namespace coincidence::committee
