#include "committee/params.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.h"

namespace coincidence::committee {
namespace {

TEST(Params, EpsilonWindowMatchesPaperFormula) {
  std::size_t n = 100;
  double ln_n = std::log(100.0);
  Window w = epsilon_window(n);
  EXPECT_DOUBLE_EQ(w.hi, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(w.lo,
                   std::max(3.0 / (8.0 * ln_n), 0.109) + 1.0 / (8.0 * ln_n));
  EXPECT_TRUE(w.feasible());
}

TEST(Params, EpsilonWindowInfeasibleForTinyN) {
  // For very small n the lower bound exceeds 1/3.
  Window w = epsilon_window(3);
  EXPECT_FALSE(w.feasible());
}

TEST(Params, DWindowMatchesPaperFormula) {
  std::size_t n = 200;
  double lambda = 8.0 * std::log(200.0);
  double eps = 0.2;
  Window w = d_window(n, eps);
  EXPECT_DOUBLE_EQ(w.lo, std::max(1.0 / lambda, 0.0362));
  EXPECT_DOUBLE_EQ(w.hi, eps / 3.0 - 1.0 / (3.0 * lambda));
}

TEST(Params, MinFeasibleNIsStable) {
  std::size_t n0 = min_feasible_n();
  EXPECT_GT(n0, 2u);
  // Both windows feasible at n0, d-window (with mid epsilon) infeasible below.
  Window ew = epsilon_window(n0);
  EXPECT_TRUE(ew.feasible());
  EXPECT_TRUE(d_window(n0, ew.midpoint()).feasible());
  if (n0 > 2) {
    Window ew_prev = epsilon_window(n0 - 1);
    bool prev_ok = ew_prev.feasible() &&
                   d_window(n0 - 1, ew_prev.midpoint()).feasible();
    EXPECT_FALSE(prev_ok);
  }
}

TEST(Params, DeriveComputesPaperQuantities) {
  std::size_t n = 300;
  Params p = Params::derive_auto(n);
  EXPECT_EQ(p.n, n);
  EXPECT_DOUBLE_EQ(p.lambda, 8.0 * std::log(300.0));
  EXPECT_EQ(p.f, static_cast<std::size_t>(
                     std::floor((1.0 / 3.0 - p.epsilon) * 300.0)));
  EXPECT_EQ(p.W, static_cast<std::size_t>(
                     std::ceil((2.0 / 3.0 + 3.0 * p.d) * p.lambda)));
  EXPECT_EQ(p.B, static_cast<std::size_t>(
                     std::floor((1.0 / 3.0 - p.d) * p.lambda)));
  EXPECT_GT(p.W, p.B);  // otherwise waiting proves nothing
}

TEST(Params, ResilienceApproaches4Point5F) {
  // §1: n ≈ 4.5 f *asymptotically*: with ε at its lower bound,
  // 1/(1/3 − 0.109) ≈ 4.46, but the +1/(8 ln n) slack decays slowly, so
  // finite n sits above that and decreases monotonically toward it.
  auto ratio_at = [](std::size_t n) {
    Window ew = epsilon_window(n);
    Params p = Params::derive(n, ew.lo + 1e-9,
                              d_window(n, ew.lo + 1e-9).midpoint());
    return static_cast<double>(p.n) / static_cast<double>(p.f);
  };
  double r5 = ratio_at(100000);
  double r7 = ratio_at(10000000);
  EXPECT_GT(r5, 4.46);
  EXPECT_LT(r7, r5);       // converging downward…
  EXPECT_NEAR(r7, 4.5, 0.2);  // …into the ≈4.5 regime the paper quotes
}

TEST(Params, StrictRejectsOutOfWindowEpsilon) {
  std::size_t n = 300;
  EXPECT_THROW(Params::derive(n, 0.05, 0.04), ConfigError);  // eps too small
  EXPECT_THROW(Params::derive(n, 0.34, 0.04), ConfigError);  // eps >= 1/3
}

TEST(Params, StrictRejectsOutOfWindowD) {
  std::size_t n = 300;
  double eps = epsilon_window(n).midpoint();
  EXPECT_THROW(Params::derive(n, eps, 0.001), ConfigError);  // below lower
  EXPECT_THROW(Params::derive(n, eps, 0.2), ConfigError);    // above upper
}

TEST(Params, RelaxedAcceptsSmallN) {
  Params p = Params::derive(20, 0.25, 0.05, /*strict=*/false);
  EXPECT_EQ(p.n, 20u);
  EXPECT_GT(p.W, 0u);
}

TEST(Params, RelaxedStillRejectsNonsense) {
  EXPECT_THROW(Params::derive(20, 0.25, 0.0, false), ConfigError);
  EXPECT_THROW(Params::derive(20, 0.5, 0.05, false), ConfigError);
  EXPECT_THROW(Params::derive(1, 0.2, 0.05, false), ConfigError);
}

TEST(Params, DeriveAutoThrowsBelowFeasibleN) {
  EXPECT_THROW(Params::derive_auto(4), ConfigError);
}

TEST(Params, SampleProbClampedToOne) {
  Params p = Params::derive(8, 0.25, 0.05, /*strict=*/false);
  // λ = 8 ln 8 ≈ 16.6 > n=8, so λ/n clamps to 1.
  EXPECT_DOUBLE_EQ(p.sample_prob(), 1.0);
}

TEST(Bounds, CoinSuccessRateMatchesPaperValues) {
  // Remark 4.10: ε = 1/3 gives exactly 1/2 (perfect coin).
  EXPECT_NEAR(coin_success_lower_bound(1.0 / 3.0), 0.5, 1e-12);
  // At the lower resilience edge ε ≈ 0.109 the rate is a positive constant.
  EXPECT_GT(coin_success_lower_bound(0.109), 0.0);
  // Monotone increasing in ε.
  EXPECT_LT(coin_success_lower_bound(0.12), coin_success_lower_bound(0.2));
}

TEST(Bounds, WhpCoinSuccessRatePositiveAboveDLowerBound) {
  EXPECT_GT(whp_coin_success_lower_bound(0.0362), 0.0);
  EXPECT_LT(whp_coin_success_lower_bound(0.036),
            whp_coin_success_lower_bound(0.1));
}

TEST(Bounds, ChernoffBoundsDecreaseWithLambda) {
  for (auto bound : {s1_failure_bound, s2_failure_bound}) {
    EXPECT_LT(bound(80.0, 0.05), bound(40.0, 0.05));
    EXPECT_LT(bound(40.0, 0.05), 1.0);
  }
  EXPECT_LT(s3_failure_bound(80.0, 0.04, 0.2), s3_failure_bound(40.0, 0.04, 0.2));
  EXPECT_LT(s4_failure_bound(80.0, 0.04, 0.2), s4_failure_bound(40.0, 0.04, 0.2));
}

TEST(Bounds, S3S4DegenerateOutsideHypothesis) {
  // If d' >= epsilon the S3 lemma gives nothing: bound reports 1.
  EXPECT_DOUBLE_EQ(s3_failure_bound(40.0, 0.2, 0.11), 1.0);
  EXPECT_DOUBLE_EQ(s4_failure_bound(40.0, 0.2, 0.11), 1.0);
}

TEST(Bounds, DescribeMentionsKeyFields) {
  Params p = Params::derive_auto(300);
  std::string s = p.describe();
  EXPECT_NE(s.find("n=300"), std::string::npos);
  EXPECT_NE(s.find("W="), std::string::npos);
  EXPECT_NE(s.find("B="), std::string::npos);
}

}  // namespace
}  // namespace coincidence::committee
