// ReliableChannel / ReliableProcess: exactly-once delivery on top of the
// lossy-link substrate, with repair traffic accounted separately.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "net/reliable_process.h"
#include "sim/simulation.h"

namespace coincidence::net {
namespace {

/// Sends `count` distinct messages to `target` at start; counts every
/// application-level receipt by tag.
class Pitcher final : public sim::Process {
 public:
  Pitcher(sim::ProcessId target, int count)
      : target_(target), count_(count) {}

  void on_start(sim::Context& ctx) override {
    for (int i = 0; i < count_; ++i)
      ctx.send(target_, "m/" + std::to_string(i), bytes_of("payload"), 2);
  }
  void on_message(sim::Context&, const sim::Message& msg) override {
    const std::string& tag = msg.tag.str();
    if (tag.rfind("m/", 0) == 0) ++got[tag];
  }

  std::map<std::string, int> got;

 private:
  sim::ProcessId target_;
  int count_;
};

struct WrappedPair {
  std::unique_ptr<sim::Simulation> sim;
  Pitcher* sender = nullptr;    // inner process 0
  Pitcher* receiver = nullptr;  // inner process 1
  const ReliableChannel* sender_channel = nullptr;
};

WrappedPair make_pair_sim(int count, sim::NetworkProfile net,
                          std::uint64_t seed, std::size_t f = 0,
                          ReliableChannelConfig ccfg = {}) {
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.f = f;
  cfg.seed = seed;
  cfg.network = std::move(net);
  WrappedPair out;
  out.sim = std::make_unique<sim::Simulation>(cfg);
  out.sim->add_process(std::make_unique<ReliableProcess>(
      std::make_unique<Pitcher>(1, count), ccfg));
  out.sim->add_process(std::make_unique<ReliableProcess>(
      std::make_unique<Pitcher>(0, 0), ccfg));
  auto& p0 = dynamic_cast<ReliableProcess&>(out.sim->process(0));
  auto& p1 = dynamic_cast<ReliableProcess&>(out.sim->process(1));
  out.sender = &dynamic_cast<Pitcher&>(p0.inner());
  out.receiver = &dynamic_cast<Pitcher&>(p1.inner());
  out.sender_channel = &p0.channel();
  return out;
}

void expect_exactly_once(const Pitcher& receiver, int count) {
  ASSERT_EQ(receiver.got.size(), static_cast<std::size_t>(count));
  for (const auto& [tag, n] : receiver.got) EXPECT_EQ(n, 1) << tag;
}

TEST(ReliableChannel, DeliversExactlyOnceOnLosslessLinks) {
  auto pair = make_pair_sim(5, sim::NetworkProfile::lossless(), 3);
  pair.sim->start();
  pair.sim->run();
  expect_exactly_once(*pair.receiver, 5);
  EXPECT_EQ(pair.sender_channel->unacked(), 0u);
  EXPECT_EQ(pair.sim->metrics().retransmits(), 0u);
}

TEST(ReliableChannel, SuppressesLinkDuplicates) {
  auto pair = make_pair_sim(
      5, sim::NetworkProfile::uniform(sim::LinkPlan::duplicating(1.0, 2)), 5);
  pair.sim->start();
  pair.sim->run();
  expect_exactly_once(*pair.receiver, 5);
  // Every data frame was duplicated on the wire, so the receiver's
  // channel must have swallowed copies.
  const auto& rx =
      dynamic_cast<ReliableProcess&>(pair.sim->process(1)).channel();
  EXPECT_GT(rx.duplicates_suppressed(), 0u);
  EXPECT_EQ(rx.delivered(), 5u);
}

TEST(ReliableChannel, RetransmitsThroughHeavyLoss) {
  auto pair = make_pair_sim(
      10, sim::NetworkProfile::uniform(sim::LinkPlan::lossy(0.4)), 7);
  pair.sim->start();
  pair.sim->run();
  // 40% loss on both the data and the ack direction: everything still
  // arrives, exactly once, because wakeup timers keep retransmitting
  // even after the network drains.
  expect_exactly_once(*pair.receiver, 10);
  EXPECT_EQ(pair.sender_channel->unacked(), 0u);
  EXPECT_GT(pair.sim->metrics().retransmits(), 0u);
  EXPECT_GT(pair.sim->metrics().link_drops(), 0u);
}

TEST(ReliableChannel, RepairTrafficAccountedSeparately) {
  auto pair = make_pair_sim(
      10, sim::NetworkProfile::uniform(sim::LinkPlan::lossy(0.4)), 9);
  pair.sim->start();
  pair.sim->run();
  const auto& m = pair.sim->metrics();
  EXPECT_GT(m.retransmit_words(), 0u);
  // All processes are correct, so every word is either protocol cost or
  // repair overhead — and the buckets must not bleed into each other.
  EXPECT_EQ(m.correct_words() + m.retransmit_words(), m.total_words());
  // The paper-complexity buckets see channel framing, never repair.
  ASSERT_TRUE(m.words_by_tag().count("dat"));
  ASSERT_TRUE(m.words_by_tag().count("ack"));
}

TEST(ReliableChannel, MalformedFramesAreSwallowed) {
  auto pair = make_pair_sim(0, sim::NetworkProfile::lossless(), 11,
                            /*f=*/1);
  pair.sim->corrupt(1, sim::FaultPlan::silent());
  pair.sim->start();
  pair.sim->inject(1, 0, "net/dat", bytes_of("not a frame"), 1);
  pair.sim->inject(1, 0, "net/ack", bytes_of("junk"), 1);
  pair.sim->inject(1, 0, "net/dat", {}, 1);
  pair.sim->run();  // must not throw out of the decoder
  const auto& rx =
      dynamic_cast<ReliableProcess&>(pair.sim->process(0)).channel();
  EXPECT_EQ(rx.delivered(), 0u);
  EXPECT_TRUE(pair.receiver->got.empty());
}

TEST(ReliableChannel, GivesUpOnDeadPeerInsteadOfLivelocking) {
  ReliableChannelConfig ccfg;
  ccfg.initial_rto = 4;
  ccfg.max_rto = 16;
  ccfg.max_retransmits = 3;
  auto pair = make_pair_sim(2, sim::NetworkProfile::lossless(), 13,
                            /*f=*/1, ccfg);
  pair.sim->corrupt(1, sim::FaultPlan::crash());
  pair.sim->start();
  pair.sim->run();  // terminates: the retry cap bounds the repair loop
  EXPECT_EQ(pair.sender_channel->abandoned(), 2u);
  EXPECT_EQ(pair.sender_channel->unacked(), 0u);
  EXPECT_EQ(pair.sim->metrics().retransmits(), 2u * 3u);
}

TEST(ReliableChannel, SelfSendsBypassTheChannel) {
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.seed = 15;
  sim::Simulation sim(cfg);
  sim.add_process(std::make_unique<ReliableProcess>(
      std::make_unique<Pitcher>(0, 4)));  // process 0 sends to itself
  sim.add_process(std::make_unique<ReliableProcess>(
      std::make_unique<Pitcher>(0, 0)));
  sim.start();
  sim.run();
  auto& p0 = dynamic_cast<ReliableProcess&>(sim.process(0));
  expect_exactly_once(dynamic_cast<Pitcher&>(p0.inner()), 4);
  EXPECT_EQ(p0.channel().delivered(), 0u);  // no framing, no acks
  EXPECT_EQ(sim.metrics().words_by_tag().count("dat"), 0u);
}

/// Counts on_dead_letter firings and the words they carried.
class DeadLetterCounter final : public sim::Observer {
 public:
  std::uint64_t count = 0;
  std::uint64_t words = 0;
  void on_dead_letter(sim::ProcessId, sim::ProcessId, const sim::Tag&,
                      std::size_t w) override {
    ++count;
    words += w;
  }
};

// ISSUE 4 satellite: giving up after max_retransmits used to be silent —
// the frame vanished from unacked() and nothing recorded the loss. Every
// abandoned frame must now surface through Metrics AND the observer
// hook, and the three counts must agree exactly.
TEST(ReliableChannel, AbandonedFramesAreAccountedNotSilent) {
  ReliableChannelConfig ccfg;
  ccfg.initial_rto = 4;
  ccfg.max_rto = 16;
  ccfg.max_retransmits = 3;
  auto pair = make_pair_sim(2, sim::NetworkProfile::lossless(), 13,
                            /*f=*/1, ccfg);
  auto counter = std::make_shared<DeadLetterCounter>();
  pair.sim->add_observer(counter);
  pair.sim->corrupt(1, sim::FaultPlan::crash());
  pair.sim->start();
  pair.sim->run();

  EXPECT_EQ(pair.sender_channel->abandoned(), 2u);
  EXPECT_EQ(pair.sim->metrics().dead_letters(),
            pair.sender_channel->abandoned());
  EXPECT_EQ(counter->count, pair.sender_channel->abandoned());
  // Each abandoned frame carried the 2-word payload; the words are
  // reported too so lossy experiments can bound what was lost.
  EXPECT_EQ(pair.sim->metrics().dead_letter_words(), counter->words);
  EXPECT_GT(counter->words, 0u);
}

TEST(ReliableChannel, NoDeadLettersWhenEverythingAcks) {
  auto pair = make_pair_sim(
      10, sim::NetworkProfile::uniform(sim::LinkPlan::lossy(0.4)), 7);
  pair.sim->start();
  pair.sim->run();
  // Heavy loss but a live peer and the default generous retry budget:
  // nothing may be abandoned, and the accounting must agree on zero.
  EXPECT_EQ(pair.sender_channel->abandoned(), 0u);
  EXPECT_EQ(pair.sim->metrics().dead_letters(), 0u);
  EXPECT_EQ(pair.sim->metrics().dead_letter_words(), 0u);
}

TEST(ReliableChannel, SameSeedSameRepairSchedule) {
  auto run = [](std::uint64_t seed) {
    auto pair = make_pair_sim(
        8, sim::NetworkProfile::uniform(sim::LinkPlan::lossy(0.3)), seed);
    pair.sim->start();
    pair.sim->run();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>(
        pair.sim->metrics().retransmits(), pair.sim->metrics().link_drops(),
        pair.sim->metrics().deliveries());
  };
  EXPECT_EQ(run(21), run(21));
}

}  // namespace
}  // namespace coincidence::net
